//! Ablation benches for the design choices documented in the repository `README.md`:
//! each group reports the *accuracy* consequence of a choice through
//! Criterion's measurement of the corresponding simulation kernel, and
//! the kernels return the accuracy so `--verbose` output shows it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbsim_bench::run_functional;
use tlbsim_core::PrefetcherConfig;
use tlbsim_sim::SimConfig;
use tlbsim_workloads::find_app;

/// Prefetch-candidate filtering (the concurrent TLB/buffer lookup) vs
/// issuing blindly: pollution effect on the small buffer.
fn bench_filtering(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_filtering");
    group.sample_size(10);
    let app = find_app("galgel").unwrap();
    for (label, enabled) in [("filtered", true), ("blind", false)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &enabled,
            |b, enabled| {
                b.iter(|| {
                    run_functional(
                        app,
                        &SimConfig::paper_default().with_prefetch_filtering(*enabled),
                    )
                    .accuracy()
                });
            },
        );
    }
    group.finish();
}

/// DP slot count on a fan-out-3 pattern: s must cover the fan-out.
fn bench_slot_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dp_slots");
    group.sample_size(10);
    let app = find_app("gsm-enc").unwrap();
    for slots in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, slots| {
            b.iter(|| {
                let mut cfg = PrefetcherConfig::distance();
                cfg.slots(*slots);
                run_functional(app, &SimConfig::paper_default().with_prefetcher(cfg)).accuracy()
            });
        });
    }
    group.finish();
}

/// PC-qualified distance indexing (§4 future work) vs plain distance
/// indexing.
fn bench_pc_qualification(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dp_pc_qualified");
    group.sample_size(10);
    for name in ["galgel", "mcf"] {
        let app = find_app(name).unwrap();
        for qualified in [false, true] {
            let label = format!("{name}/{}", if qualified { "pc" } else { "plain" });
            group.bench_with_input(BenchmarkId::from_parameter(label), &qualified, |b, q| {
                b.iter(|| {
                    let mut cfg = PrefetcherConfig::distance();
                    cfg.pc_qualified(*q);
                    run_functional(app, &SimConfig::paper_default().with_prefetcher(cfg)).accuracy()
                });
            });
        }
    }
    group.finish();
}

/// Aggressive prediction tables self-evict from the 16-entry buffer:
/// the paper's observed ASP degradation at r = 1024.
fn bench_buffer_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_buffer_pressure");
    group.sample_size(10);
    let app = find_app("apsi").unwrap();
    for (label, buffer) in [("b8", 8usize), ("b16", 16), ("b64", 64)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &buffer, |b, buffer| {
            b.iter(|| {
                run_functional(
                    app,
                    &SimConfig::paper_default().with_prefetch_buffer(*buffer),
                )
                .accuracy()
            });
        });
    }
    group.finish();
}

/// Pair-indexed distance tables (§2.5's "set of consecutive distances"
/// variant) vs plain indexing on a high-fanout cycle app.
fn bench_pair_indexing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dp_pair_index");
    group.sample_size(10);
    let app = find_app("gsm-enc").unwrap();
    for paired in [false, true] {
        let label = if paired { "pair" } else { "plain" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &paired, |b, paired| {
            b.iter(|| {
                let mut cfg = PrefetcherConfig::distance();
                cfg.pair_indexed(*paired);
                run_functional(app, &SimConfig::paper_default().with_prefetcher(cfg)).accuracy()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_filtering,
    bench_slot_fanout,
    bench_pc_qualification,
    bench_buffer_pressure,
    bench_pair_indexing
);
criterion_main!(benches);
