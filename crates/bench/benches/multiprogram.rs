//! Single-stream versus multiprogrammed-interleave throughput.
//!
//! `multiprogram` runs the telemetry fixture (gap + mcf interleaved
//! round-robin at a 4096-access quantum under the representative DP
//! configuration) through the functional engine twice over the identical
//! accesses: the component streams back-to-back (`run_app` each), and as
//! one multiprogrammed stream through the switch-aware `run_mix`. The
//! group asserts the tentpole gate: **interleaved execution at ≥ 0.8×
//! single-stream throughput** — segment walking and per-stream
//! attribution are bookkeeping around the same batched hot loop, so a
//! regression past that floor means the multiprogram layer started doing
//! per-access work (or allocating) and `cargo bench` fails loudly
//! instead of drifting.
//!
//! The fixture is identical to the `multiprogram` section `xp
//! bench-json` snapshots into `BENCH_throughput.json`, so gate and
//! telemetry stay comparable.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlbsim_experiments::throughput::multiprogram_fixture;
use tlbsim_sim::{run_app, run_mix, SwitchPolicy, TablePolicy};

/// The gate: interleaved throughput must be at least this fraction of
/// the back-to-back single-stream path.
const GATE_MIN_RATIO: f64 = 0.8;

fn bench_multiprogram(c: &mut Criterion) {
    let (mix, scale, config) = multiprogram_fixture();
    let accesses = mix
        .streams()
        .iter()
        .map(|s| s.stream_len(scale))
        .sum::<u64>();
    println!(
        "multiprogram fixture: {} ({} accesses)",
        tlbsim_workloads::StreamSpec::name(&mix),
        accesses
    );

    let mut group = c.benchmark_group("multiprogram");
    group.throughput(Throughput::Elements(accesses));
    group.bench_function("single_stream", |b| {
        b.iter(|| {
            let mut misses = 0;
            for stream in mix.streams() {
                misses += run_app(stream, scale, &config)
                    .expect("valid config")
                    .misses;
            }
            misses
        });
    });
    group.bench_function("interleaved", |b| {
        b.iter(|| {
            run_mix(&mix, scale, &config, SwitchPolicy::None)
                .expect("valid config")
                .misses
        });
    });
    group.bench_function("interleaved_flush_on_switch", |b| {
        b.iter(|| {
            run_mix(&mix, scale, &config, SwitchPolicy::FlushOnSwitch)
                .expect("valid config")
                .misses
        });
    });
    group.bench_function("interleaved_asid", |b| {
        let policy = SwitchPolicy::Asid {
            contexts: mix.streams().len(),
            tables: TablePolicy::Shared,
        };
        b.iter(|| {
            run_mix(&mix, scale, &config, policy)
                .expect("valid config")
                .misses
        });
    });
    group.finish();

    let mut single_ns = f64::NAN;
    let mut interleaved_ns = f64::NAN;
    for result in c.results() {
        match result.name.as_str() {
            "multiprogram/single_stream" => single_ns = result.ns_per_iter,
            "multiprogram/interleaved" => interleaved_ns = result.ns_per_iter,
            _ => {}
        }
    }
    assert!(
        single_ns.is_finite() && interleaved_ns.is_finite(),
        "multiprogram results missing — bench labels and the gate below are out of sync"
    );
    let ratio = single_ns / interleaved_ns;
    println!("multiprogram ratio (single-stream ns / interleaved ns): {ratio:.2}x");
    // The interleave typically lands near parity (its extra work is per
    // segment, not per access). A single noisy sample on a loaded
    // machine shouldn't read as a regression, so a borderline
    // measurement gets one clean retry before the assert.
    if ratio < GATE_MIN_RATIO {
        let retry = measure_ratio_once();
        println!("multiprogram retry ratio: {retry:.2}x");
        assert!(
            retry.max(ratio) >= GATE_MIN_RATIO,
            "interleaved execution must run at >= {GATE_MIN_RATIO}x single-stream throughput, \
             measured {ratio:.2}x then {retry:.2}x"
        );
    }
}

/// One directly-timed ratio sample (best-of-3 for each path),
/// independent of the Criterion sample settings.
fn measure_ratio_once() -> f64 {
    let (mix, scale, config) = multiprogram_fixture();
    let mut best = [f64::INFINITY; 2];
    for _ in 0..3 {
        let start = Instant::now();
        for stream in mix.streams() {
            std::hint::black_box(run_app(stream, scale, &config).expect("valid config"));
        }
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(
            run_mix(&mix, scale, &config, SwitchPolicy::None).expect("valid config"),
        );
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[0] / best[1]
}

criterion_group!(benches, bench_multiprogram);
criterion_main!(benches);
