//! One bench group per figure of the paper: times the simulation kernel
//! that regenerates each figure's data points (at reduced scale — the
//! full-scale regeneration is `xp figure7 …`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbsim_bench::run_functional;
use tlbsim_core::{Associativity, PrefetcherConfig};
use tlbsim_mmu::TlbConfig;
use tlbsim_sim::SimConfig;
use tlbsim_workloads::find_app;

/// Figure 7 kernel: one SPEC application under each of the four schemes.
fn bench_figure7(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure7_kernel");
    group.sample_size(10);
    let app = find_app("galgel").unwrap();
    for scheme in [
        PrefetcherConfig::recency(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::distance(),
        PrefetcherConfig::stride(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    run_functional(
                        app,
                        &SimConfig::paper_default().with_prefetcher(scheme.clone()),
                    )
                    .accuracy()
                });
            },
        );
    }
    group.finish();
}

/// Figure 8 kernel: one application per non-SPEC suite under DP.
fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8_kernel");
    group.sample_size(10);
    for name in ["adpcm-enc", "msvc", "ft"] {
        let app = find_app(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| run_functional(app, &SimConfig::paper_default()).accuracy());
        });
    }
    group.finish();
}

/// Figure 9 kernel: DP sensitivity points (table size, slots, buffer,
/// TLB size) on one high-miss application.
fn bench_figure9(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure9_kernel");
    group.sample_size(10);
    let app = find_app("adpcm-enc").unwrap();

    let mut small_table = PrefetcherConfig::distance();
    small_table.rows(32).assoc(Associativity::Full);
    let mut many_slots = PrefetcherConfig::distance();
    many_slots.slots(6);

    let variants: Vec<(&str, SimConfig)> = vec![
        (
            "r32-full",
            SimConfig::paper_default().with_prefetcher(small_table),
        ),
        ("s6", SimConfig::paper_default().with_prefetcher(many_slots)),
        ("b64", SimConfig::paper_default().with_prefetch_buffer(64)),
        (
            "tlb64",
            SimConfig::paper_default().with_tlb(TlbConfig::fully_associative(64)),
        ),
    ];
    for (label, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| run_functional(app, config).accuracy());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure7, bench_figure8, bench_figure9);
criterion_main!(benches);
