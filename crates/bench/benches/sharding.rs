//! Sharded-versus-sequential throughput of one figure-scale run.
//!
//! `sharded_run` times `run_app_sharded` at 1/2/4 shards against the
//! sequential `run_app` path on the figure-scale DP fixture (galgel at
//! the standard scale — the paper's highest-miss-rate SPEC
//! application). The group then asserts the tentpole scaling gate:
//! **≥ 2× throughput at 4 shards**, so a regression in the sharded
//! executor fails `cargo bench` loudly instead of drifting.
//!
//! The gate is a statement about parallel hardware, so it is guarded by
//! [`std::thread::available_parallelism`]: on hosts with fewer than 4
//! CPUs (where a 4-shard run cannot physically run 4 workers at once)
//! the measurement still prints but the assertion is skipped with an
//! explanatory note. CI runners and developer machines with ≥ 4 cores
//! enforce it.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlbsim_sim::{run_app, run_app_sharded, SimConfig};
use tlbsim_workloads::{find_app, AppSpec, Scale};

/// The gate: sharded throughput at [`GATE_SHARDS`] shards must be at
/// least this multiple of sequential throughput.
const GATE_MIN_SPEEDUP: f64 = 2.0;
/// Shard count the gate is evaluated at.
const GATE_SHARDS: usize = 4;

fn fixture() -> (&'static AppSpec, Scale, SimConfig) {
    let app = find_app("galgel").expect("galgel is registered");
    (app, Scale::STANDARD, SimConfig::paper_default())
}

fn bench_sharded_run(c: &mut Criterion) {
    let (app, scale, config) = fixture();
    let accesses = app.stream_len(scale);
    let mut group = c.benchmark_group("sharded_run");
    group.throughput(Throughput::Elements(accesses));

    group.bench_function("sequential", |b| {
        b.iter(|| run_app(app, scale, &config).expect("valid config").misses);
    });
    for shards in [1usize, 2, GATE_SHARDS] {
        group.bench_with_input(
            BenchmarkId::new("sharded", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    run_app_sharded(app, scale, &config, shards)
                        .expect("valid config")
                        .merged
                        .misses
                });
            },
        );
    }
    group.finish();

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = measure_speedup_once();
    println!("sharded_run speedup at {GATE_SHARDS} shards: {speedup:.2}x ({cpus} cpus)");
    if cpus < GATE_SHARDS {
        println!(
            "sharded_run gate SKIPPED: {cpus} cpus cannot run {GATE_SHARDS} shard workers \
             in parallel (gate needs >= {GATE_SHARDS})"
        );
        return;
    }
    // Typical headroom on a >= 4-core host is ~3x against the 2x floor.
    // A single noisy sample shouldn't read as a regression, so a
    // borderline measurement gets one clean retry before the assert.
    if speedup < GATE_MIN_SPEEDUP {
        let retry = measure_speedup_once();
        println!("sharded_run retry speedup: {retry:.2}x");
        assert!(
            retry.max(speedup) >= GATE_MIN_SPEEDUP,
            "sharded run at {GATE_SHARDS} shards must be >= {GATE_MIN_SPEEDUP}x the \
             sequential path on a {cpus}-cpu host, measured {speedup:.2}x then {retry:.2}x"
        );
    }
}

/// One directly-timed speedup sample (best-of-3 for each path),
/// independent of the Criterion sample settings.
fn measure_speedup_once() -> f64 {
    let (app, scale, config) = fixture();
    let mut best = [f64::INFINITY; 2];
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(run_app(app, scale, &config).expect("valid config"));
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(
            run_app_sharded(app, scale, &config, GATE_SHARDS).expect("valid config"),
        );
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[0] / best[1]
}

criterion_group!(benches, bench_sharded_run);
criterion_main!(benches);
