//! Flat-v1 versus block-compressed-v2 trace replay throughput and size.
//!
//! `trace_v2` records the trace-replay DP fixture (galgel at the
//! `SMALL` scale) twice — flat v1 and delta-block v2 — then times the
//! functional engine over the identical access stream replayed from
//! each. The group asserts the tentpole gates:
//!
//! - **compressed replay at ≥ 1/1.2× of raw-mmap replay throughput** —
//!   varint delta decode is allowed to cost at most 20% over copying
//!   17-byte cells, or the "compression is nearly free" claim the
//!   format rests on has regressed;
//! - **≤ 6 bytes per record on the fixture** — the fixture's strided
//!   pointer-chasing stream delta-compresses well below the 17-byte
//!   flat cell, and a size regression means the encoder stopped
//!   exploiting the deltas.
//!
//! The fixture is identical to the `trace_v2` section `xp bench-json`
//! snapshots into `BENCH_throughput.json`, so gate and telemetry stay
//! comparable.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlbsim_experiments::replay::{record_spec, record_spec_with_format, RecordFormat};
use tlbsim_experiments::throughput::{trace_replay_fixture, TempFileGuard};
use tlbsim_sim::run_app;
use tlbsim_workloads::TraceWorkload;

/// The throughput gate: compressed replay must be at least this
/// fraction of raw-mmap replay throughput (1/1.2).
const GATE_MIN_RATIO: f64 = 1.0 / 1.2;

/// The size gate: the v2 encoding of the fixture must average at most
/// this many bytes per record (flat v1 is 17).
const GATE_MAX_BYTES_PER_RECORD: f64 = 6.0;

fn bench_trace_v2(c: &mut Criterion) {
    let (app, scale, config) = trace_replay_fixture();
    let v1_path =
        std::env::temp_dir().join(format!("tlbsim-cargo-bench-v1-{}.tlbt", std::process::id()));
    let v2_path =
        std::env::temp_dir().join(format!("tlbsim-cargo-bench-v2-{}.tlbt", std::process::id()));
    let _v1_guard = TempFileGuard(v1_path.clone());
    let _v2_guard = TempFileGuard(v2_path.clone());
    let v1 = record_spec(app, scale, None, &v1_path).expect("recording the v1 fixture succeeds");
    let v2 = record_spec_with_format(app, scale, None, &v2_path, RecordFormat::v2_default())
        .expect("recording the v2 fixture succeeds");
    assert_eq!(v1.records, v2.records, "both formats hold the same stream");

    let bytes_per_record = v2.bytes as f64 / v2.records as f64;
    println!(
        "trace_v2 fixture: {} accesses, v1 {} bytes, v2 {} bytes \
         ({bytes_per_record:.2} bytes/record, {:.2}x smaller)",
        v1.records,
        v1.bytes,
        v2.bytes,
        v1.bytes as f64 / v2.bytes as f64
    );
    assert!(
        bytes_per_record <= GATE_MAX_BYTES_PER_RECORD,
        "v2 must encode the fixture at <= {GATE_MAX_BYTES_PER_RECORD} bytes/record, \
         measured {bytes_per_record:.2}"
    );

    let raw = TraceWorkload::open(&v1_path).expect("a just-recorded v1 trace validates");
    let compressed = TraceWorkload::open(&v2_path).expect("a just-recorded v2 trace validates");
    assert_eq!(compressed.format_version(), 2, "v2 header sniffed");

    let mut group = c.benchmark_group("trace_v2");
    group.throughput(Throughput::Elements(v1.records));
    group.bench_function("raw_mmap_replay", |b| {
        b.iter(|| run_app(&raw, scale, &config).expect("valid config").misses);
    });
    group.bench_function("compressed_replay", |b| {
        b.iter(|| {
            run_app(&compressed, scale, &config)
                .expect("valid config")
                .misses
        });
    });
    group.finish();

    let mut raw_ns = f64::NAN;
    let mut compressed_ns = f64::NAN;
    for result in c.results() {
        match result.name.as_str() {
            "trace_v2/raw_mmap_replay" => raw_ns = result.ns_per_iter,
            "trace_v2/compressed_replay" => compressed_ns = result.ns_per_iter,
            _ => {}
        }
    }
    assert!(
        raw_ns.is_finite() && compressed_ns.is_finite(),
        "trace_v2 results missing — bench labels and the gate below are out of sync"
    );
    let ratio = raw_ns / compressed_ns;
    println!("trace_v2 ratio (raw ns / compressed ns): {ratio:.2}x");
    // A single noisy sample on a loaded machine shouldn't read as a
    // regression, so a borderline measurement gets one clean retry
    // before the assert.
    if ratio < GATE_MIN_RATIO {
        let retry = measure_ratio_once(&raw, &compressed);
        println!("trace_v2 retry ratio: {retry:.2}x");
        assert!(
            retry.max(ratio) >= GATE_MIN_RATIO,
            "compressed v2 replay must run at >= {GATE_MIN_RATIO:.3}x raw-mmap replay \
             throughput, measured {ratio:.2}x then {retry:.2}x"
        );
    }
}

/// One directly-timed ratio sample (best-of-3 for each path),
/// independent of the Criterion sample settings.
fn measure_ratio_once(raw: &TraceWorkload, compressed: &TraceWorkload) -> f64 {
    let (_, scale, config) = trace_replay_fixture();
    let mut best = [f64::INFINITY; 2];
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(run_app(raw, scale, &config).expect("valid config"));
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(run_app(compressed, scale, &config).expect("valid config"));
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[0] / best[1]
}

criterion_group!(benches, bench_trace_v2);
criterion_main!(benches);
