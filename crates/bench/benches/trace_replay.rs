//! Generator-driven versus mmap-trace-replay throughput.
//!
//! `trace_replay` records the shard-scaling DP fixture (galgel at the
//! `SMALL` scale) to a temp `TLBT` file once, then times the functional
//! engine twice over the identical access stream: driven by the
//! synthetic generator, and replayed zero-copy out of the memory-mapped
//! trace. The group asserts the tentpole gate: **mmap replay at ≥ 0.8×
//! generator throughput** — replay decodes 17-byte records instead of
//! running visit arithmetic, so a regression past that floor means the
//! zero-copy path stopped being zero-copy (or started allocating) and
//! `cargo bench` fails loudly instead of drifting.
//!
//! The fixture is identical to the `trace_replay` section `xp
//! bench-json` snapshots into `BENCH_throughput.json`, so gate and
//! telemetry stay comparable.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tlbsim_experiments::replay::record_spec;
use tlbsim_experiments::throughput::{trace_replay_fixture, TempFileGuard};
use tlbsim_sim::run_app;
use tlbsim_workloads::TraceWorkload;

/// The gate: replay throughput must be at least this fraction of
/// generator throughput.
const GATE_MIN_RATIO: f64 = 0.8;

fn bench_trace_replay(c: &mut Criterion) {
    let (app, scale, config) = trace_replay_fixture();
    let path = std::env::temp_dir().join(format!(
        "tlbsim-cargo-bench-trace-{}.tlbt",
        std::process::id()
    ));
    let _guard = TempFileGuard(path.clone());
    let summary = record_spec(app, scale, None, &path).expect("recording the fixture succeeds");
    let trace = TraceWorkload::open(&path).expect("a just-recorded trace validates");
    println!(
        "trace_replay fixture: {} accesses, {} bytes, {} backend",
        summary.records,
        summary.bytes,
        trace.backend()
    );

    let mut group = c.benchmark_group("trace_replay");
    group.throughput(Throughput::Elements(summary.records));
    group.bench_function("generator", |b| {
        b.iter(|| run_app(app, scale, &config).expect("valid config").misses);
    });
    group.bench_function("mmap_replay", |b| {
        b.iter(|| {
            run_app(&trace, scale, &config)
                .expect("valid config")
                .misses
        });
    });
    group.finish();

    let mut generator_ns = f64::NAN;
    let mut replay_ns = f64::NAN;
    for result in c.results() {
        match result.name.as_str() {
            "trace_replay/generator" => generator_ns = result.ns_per_iter,
            "trace_replay/mmap_replay" => replay_ns = result.ns_per_iter,
            _ => {}
        }
    }
    assert!(
        generator_ns.is_finite() && replay_ns.is_finite(),
        "trace_replay results missing — bench labels and the gate below are out of sync"
    );
    let ratio = generator_ns / replay_ns;
    println!("trace_replay ratio (generator ns / replay ns): {ratio:.2}x");
    // Replay typically lands above parity (decoding records is cheaper
    // than generating them). A single noisy sample on a loaded machine
    // shouldn't read as a regression, so a borderline measurement gets
    // one clean retry before the assert.
    if ratio < GATE_MIN_RATIO {
        let retry = measure_ratio_once(&trace);
        println!("trace_replay retry ratio: {retry:.2}x");
        assert!(
            retry.max(ratio) >= GATE_MIN_RATIO,
            "mmap trace replay must run at >= {GATE_MIN_RATIO}x generator throughput, \
             measured {ratio:.2}x then {retry:.2}x"
        );
    }
}

/// One directly-timed ratio sample (best-of-3 for each path),
/// independent of the Criterion sample settings.
fn measure_ratio_once(trace: &TraceWorkload) -> f64 {
    let (app, scale, config) = trace_replay_fixture();
    let mut best = [f64::INFINITY; 2];
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(run_app(app, scale, &config).expect("valid config"));
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(run_app(trace, scale, &config).expect("valid config"));
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[0] / best[1]
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);
