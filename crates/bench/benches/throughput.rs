//! End-to-end throughput of the batched, zero-allocation miss path.
//!
//! Two groups:
//!
//! * `engine_throughput` — accesses/sec of the full functional engine
//!   per scheme (none/SP/ASP/MP/RP/DP) on a miss-heavy looping stream;
//!   this is the number `xp bench-json` snapshots into
//!   `BENCH_throughput.json` for the perf trajectory.
//! * `dp_miss_path` — the DP mechanism alone on the mixed miss stream:
//!   the reusable-sink hot path versus the legacy `decide()` wrapper
//!   that allocates an owned `PrefetchDecision` per miss (the seed's
//!   `Vec`-returning API). The sink path is required to be ≥ 1.5× the
//!   legacy path; the benchmark asserts it so a regression fails
//!   `cargo bench` loudly instead of drifting.
//! * `adaptive` — the confidence-wrapped distance prefetcher against
//!   plain DP through the full engine: the counter bank consulted on
//!   every miss prices adaptivity itself, and the wrapped path is
//!   required to stay ≥ 0.8× plain DP throughput — asserted so the
//!   wrapper can never quietly become the hot path's bottleneck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlbsim_bench::{looping_access_stream, mixed_miss_stream};
use tlbsim_core::{CandidateBuf, ConfidenceConfig, PrefetcherConfig};
use tlbsim_sim::{Engine, SimConfig};

fn bench_engine_throughput(c: &mut Criterion) {
    // 600 pages > 128 TLB entries: every lap misses on every page, so
    // the miss path (not the TLB fast path) dominates.
    let stream = looping_access_stream(600, 2, 6);
    let mut group = c.benchmark_group("engine_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    let schemes = [
        ("none", PrefetcherConfig::none()),
        ("SP", PrefetcherConfig::sequential()),
        ("ASP", PrefetcherConfig::stride()),
        ("MP", PrefetcherConfig::markov()),
        ("RP", PrefetcherConfig::recency()),
        ("DP", PrefetcherConfig::distance()),
    ];
    for (label, prefetcher) in schemes {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            let mut engine = Engine::new(config).expect("valid config");
            b.iter(|| {
                engine.try_recycle(config);
                engine.run(stream.iter().copied());
                engine.stats().misses
            });
        });
    }
    group.finish();
}

fn bench_dp_miss_path(c: &mut Criterion) {
    let stream = mixed_miss_stream(10_000);
    let mut group = c.benchmark_group("dp_miss_path");
    group.throughput(Throughput::Elements(stream.len() as u64));

    group.bench_function("sink", |b| {
        let mut p = PrefetcherConfig::distance().build().unwrap();
        let mut sink = CandidateBuf::new();
        b.iter(|| {
            p.flush();
            let mut issued = 0usize;
            for ctx in &stream {
                sink.clear();
                p.on_miss(ctx, &mut sink);
                issued += sink.len();
            }
            issued
        });
    });
    group.bench_function("legacy_vec", |b| {
        let mut p = PrefetcherConfig::distance().build().unwrap();
        b.iter(|| {
            p.flush();
            let mut issued = 0usize;
            for ctx in &stream {
                // The seed API: one owned Vec-backed decision per miss.
                issued += p.decide(ctx).pages.len();
            }
            issued
        });
    });
    group.finish();

    let mut sink_ns = f64::NAN;
    let mut legacy_ns = f64::NAN;
    for result in c.results() {
        match result.name.as_str() {
            "dp_miss_path/sink" => sink_ns = result.ns_per_iter,
            "dp_miss_path/legacy_vec" => legacy_ns = result.ns_per_iter,
            _ => {}
        }
    }
    assert!(
        sink_ns.is_finite() && legacy_ns.is_finite(),
        "dp_miss_path results missing — bench labels and the gate below are out of sync"
    );
    let speedup = legacy_ns / sink_ns;
    println!("dp_miss_path speedup (legacy_vec / sink): {speedup:.2}x");
    // Typical headroom is ~2.1x against the 1.5x floor. A single noisy
    // sample on a loaded machine shouldn't read as a regression, so a
    // borderline measurement gets one clean retry before the assert.
    if speedup < 1.5 {
        let retry = measure_speedup_once(&stream);
        println!("dp_miss_path retry speedup: {retry:.2}x");
        assert!(
            retry.max(speedup) >= 1.5,
            "sink-based DP miss path must be >= 1.5x the legacy Vec path, \
             measured {speedup:.2}x then {retry:.2}x"
        );
    }
}

/// The gate: confidence-wrapped DP must deliver at least this fraction
/// of plain DP engine throughput.
const ADAPTIVE_GATE_MIN_RATIO: f64 = 0.8;

/// The confidence-wrapped DP configuration the gate measures (the
/// adaptive default: threshold 2, degree cap 4).
fn confidence_dp() -> PrefetcherConfig {
    let mut cfg = PrefetcherConfig::distance();
    cfg.confidence(ConfidenceConfig::adaptive());
    cfg
}

fn bench_adaptive(c: &mut Criterion) {
    let stream = looping_access_stream(600, 2, 6);
    let mut group = c.benchmark_group("adaptive");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (label, prefetcher) in [
        ("DP", PrefetcherConfig::distance()),
        ("C+DP", confidence_dp()),
    ] {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            let mut engine = Engine::new(config).expect("valid config");
            b.iter(|| {
                engine.try_recycle(config);
                engine.run(stream.iter().copied());
                engine.stats().misses
            });
        });
    }
    group.finish();

    let mut dp_ns = f64::NAN;
    let mut wrapped_ns = f64::NAN;
    for result in c.results() {
        match result.name.as_str() {
            "adaptive/DP" => dp_ns = result.ns_per_iter,
            "adaptive/C+DP" => wrapped_ns = result.ns_per_iter,
            _ => {}
        }
    }
    assert!(
        dp_ns.is_finite() && wrapped_ns.is_finite(),
        "adaptive results missing — bench labels and the gate below are out of sync"
    );
    let ratio = dp_ns / wrapped_ns;
    println!("adaptive ratio (C+DP vs DP throughput): {ratio:.2}x");
    // A borderline measurement on a loaded machine gets one clean
    // retry before the assert, as in the other gated groups.
    if ratio < ADAPTIVE_GATE_MIN_RATIO {
        let retry = measure_adaptive_ratio_once(&stream);
        println!("adaptive retry ratio: {retry:.2}x");
        assert!(
            retry.max(ratio) >= ADAPTIVE_GATE_MIN_RATIO,
            "confidence-wrapped DP must be >= {ADAPTIVE_GATE_MIN_RATIO}x plain DP \
             throughput, measured {ratio:.2}x then {retry:.2}x"
        );
    }
}

/// One directly-timed C+DP-vs-DP ratio sample (best-of-5 for each
/// path), independent of the Criterion sample settings.
fn measure_adaptive_ratio_once(stream: &[tlbsim_core::MemoryAccess]) -> f64 {
    use std::time::Instant;
    let mut best = [f64::INFINITY; 2];
    let dp_config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::distance());
    let wrapped_config = SimConfig::paper_default().with_prefetcher(confidence_dp());
    let mut dp = Engine::new(&dp_config).expect("valid config");
    let mut wrapped = Engine::new(&wrapped_config).expect("valid config");
    for _ in 0..5 {
        let start = Instant::now();
        dp.try_recycle(&dp_config);
        dp.run(stream.iter().copied());
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        wrapped.try_recycle(&wrapped_config);
        wrapped.run(stream.iter().copied());
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[0] / best[1]
}

/// One directly-timed speedup sample (best-of-5 for each path),
/// independent of the Criterion sample settings.
fn measure_speedup_once(stream: &[tlbsim_core::MissContext]) -> f64 {
    use std::time::Instant;
    let mut best = [f64::INFINITY; 2];
    let mut sink_p = PrefetcherConfig::distance().build().unwrap();
    let mut sink = CandidateBuf::new();
    let mut legacy_p = PrefetcherConfig::distance().build().unwrap();
    for _ in 0..5 {
        let start = Instant::now();
        sink_p.flush();
        for ctx in stream {
            sink.clear();
            sink_p.on_miss(ctx, &mut sink);
        }
        best[0] = best[0].min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        legacy_p.flush();
        for ctx in stream {
            std::hint::black_box(legacy_p.decide(ctx));
        }
        best[1] = best[1].min(start.elapsed().as_secs_f64());
    }
    best[1] / best[0]
}

criterion_group!(
    benches,
    bench_engine_throughput,
    bench_dp_miss_path,
    bench_adaptive
);
criterion_main!(benches);
