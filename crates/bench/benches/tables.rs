//! One bench group per table of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbsim_bench::run_functional;
use tlbsim_core::PrefetcherConfig;
use tlbsim_experiments::table1;
use tlbsim_mem::TimingParams;
use tlbsim_sim::{run_app_timed, SimConfig};
use tlbsim_workloads::{find_app, Scale};

/// Table 1 is generated from the implementations; the bench times the
/// profile extraction and rendering.
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/render", |b| {
        b.iter(|| table1::run().render().len());
    });
}

/// Table 2 kernel: the four-scheme accuracy comparison on one app.
fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_kernel");
    group.sample_size(10);
    let app = find_app("parser").unwrap();
    for scheme in [
        PrefetcherConfig::distance(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, scheme| {
                b.iter(|| {
                    run_functional(
                        app,
                        &SimConfig::paper_default().with_prefetcher(scheme.clone()),
                    )
                    .accuracy()
                });
            },
        );
    }
    group.finish();
}

/// Table 3 kernel: the three timed runs (baseline, RP, DP) per
/// application.
fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_kernel");
    group.sample_size(10);
    let params = TimingParams::paper_default();
    for name in ["ammp", "mcf"] {
        let app = find_app(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| {
                let base = run_app_timed(app, Scale::TINY, &SimConfig::baseline(), params).unwrap();
                let rp = run_app_timed(
                    app,
                    Scale::TINY,
                    &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency()),
                    params,
                )
                .unwrap();
                let dp =
                    run_app_timed(app, Scale::TINY, &SimConfig::paper_default(), params).unwrap();
                (rp.normalized_against(&base), dp.normalized_against(&base))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3);
criterion_main!(benches);
