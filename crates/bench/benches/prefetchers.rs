//! Microbenchmarks of the five prefetching mechanisms' `on_miss` paths —
//! the logic that would sit next to the TLB, where the paper worries
//! about "slowing down the critical path of TLB accesses".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlbsim_bench::mixed_miss_stream;
use tlbsim_core::{CandidateBuf, PrefetcherConfig, PrefetcherKind};

fn bench_on_miss(c: &mut Criterion) {
    let stream = mixed_miss_stream(10_000);
    let mut group = c.benchmark_group("on_miss");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in PrefetcherKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.abbrev()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut p = PrefetcherConfig::new(*kind).build().unwrap();
                    let mut sink = CandidateBuf::new();
                    let mut issued = 0usize;
                    for ctx in &stream {
                        sink.clear();
                        p.on_miss(ctx, &mut sink);
                        issued += sink.len();
                    }
                    issued
                });
            },
        );
    }
    group.finish();
}

fn bench_table_sizes(c: &mut Criterion) {
    let stream = mixed_miss_stream(10_000);
    let mut group = c.benchmark_group("dp_table_size");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for rows in [32usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, rows| {
            b.iter(|| {
                let mut cfg = PrefetcherConfig::distance();
                cfg.rows(*rows);
                let mut p = cfg.build().unwrap();
                let mut sink = CandidateBuf::new();
                let mut issued = 0usize;
                for ctx in &stream {
                    sink.clear();
                    p.on_miss(ctx, &mut sink);
                    issued += sink.len();
                }
                issued
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_on_miss, bench_table_sizes);
criterion_main!(benches);
