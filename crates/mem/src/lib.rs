//! # tlbsim-mem — memory-system timing substrate
//!
//! The cycle model behind the paper's Table 3 experiment: a serialized
//! [`PrefetchChannel`] on which prefetch fetches and recency
//! prefetching's LRU-stack pointer updates contend with each other (but,
//! per the paper's deliberately RP-favouring model, not with demand
//! traffic), plus the [`TimingParams`] constants (100-cycle TLB miss
//! penalty, 50-cycle memory operations, 4-wide issue).
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_core::VirtPage;
//! use tlbsim_mem::{PrefetchChannel, TimingParams};
//!
//! let params = TimingParams::paper_default();
//! let mut channel = PrefetchChannel::new(params.memory_op_cost);
//!
//! // RP pays four pointer updates before its two prefetch fetches.
//! channel.issue_maintenance(0, 4);
//! let arrival = channel.issue_fetch(0, VirtPage::new(9));
//! assert_eq!(arrival, 5 * params.memory_op_cost);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod timing;

pub use channel::PrefetchChannel;
pub use timing::TimingParams;
