//! Cycle-accounting parameters for the Table 3 experiment.
//!
//! The paper's timing experiment (§3.2, "Comparing DP with RP in greater
//! detail") runs sim-outorder with a 4-wide issue, charges a constant 100
//! cycles per unhidden TLB miss, and services prefetch/state-maintenance
//! operations from main memory at 50 cycles each. [`TimingParams`]
//! centralises those constants so the timing engine, the benches and the
//! tests agree on them.

use serde::{Deserialize, Serialize};

/// Constants of the cycle model.
///
/// # Examples
///
/// ```
/// use tlbsim_mem::TimingParams;
///
/// let t = TimingParams::paper_default();
/// assert_eq!(t.tlb_miss_penalty, 100);
/// assert_eq!(t.memory_op_cost, 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Cycles the CPU stalls on a TLB miss served from the page table
    /// (the paper assumes a constant 100-cycle penalty).
    pub tlb_miss_penalty: u64,
    /// Cycles per memory operation on the prefetch channel: prefetch
    /// fetches and RP's pointer updates (50 in the paper).
    pub memory_op_cost: u64,
    /// Instructions issued per cycle by the ideal pipeline (sim-outorder
    /// is run with a 4-issue width).
    pub issue_width: u64,
    /// Instructions modelled per data reference; SPEC integer/FP codes
    /// average roughly one data reference per three instructions, which
    /// is how a reference-driven simulation is scaled back to
    /// instruction counts.
    pub instructions_per_access: u64,
    /// Additional non-TLB cycles per data reference, standing in for the
    /// cache-miss and pipeline stalls a full sim-outorder model would
    /// charge. Without this the TLB's share of execution time would be
    /// wildly inflated relative to the paper's Table 3 baseline.
    pub overhead_per_access: f64,
}

impl TimingParams {
    /// The paper's constants: 100-cycle miss penalty, 50-cycle memory
    /// operations, 4-wide issue.
    pub fn paper_default() -> Self {
        TimingParams {
            tlb_miss_penalty: 100,
            memory_op_cost: 50,
            issue_width: 4,
            instructions_per_access: 3,
            overhead_per_access: 5.25,
        }
    }

    /// Pipeline + non-TLB memory cycles per data reference.
    pub fn cycles_per_access(&self) -> f64 {
        self.instructions_per_access as f64 / self.issue_width as f64 + self.overhead_per_access
    }

    /// Base cycles for `accesses` data references, excluding all
    /// TLB-related stalls.
    pub fn base_cycles(&self, accesses: u64) -> f64 {
        accesses as f64 * self.cycles_per_access()
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let t = TimingParams::paper_default();
        assert_eq!(t.tlb_miss_penalty, 100);
        assert_eq!(t.memory_op_cost, 50);
        assert_eq!(t.issue_width, 4);
    }

    #[test]
    fn base_cycles_combines_issue_and_overhead() {
        let t = TimingParams::paper_default();
        // 3 instr / 4-wide = 0.75, plus 5.25 overhead = 6.0 per access
        // (a CPI of ~2, in sim-outorder-with-caches territory).
        assert!((t.cycles_per_access() - 6.0).abs() < 1e-12);
        assert!((t.base_cycles(10) - 60.0).abs() < 1e-9);
        assert_eq!(t.base_cycles(0), 0.0);
    }
}
