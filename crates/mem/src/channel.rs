//! The serialized prefetch-traffic channel.
//!
//! The paper's timing experiment deliberately uses a model *biased in
//! RP's favour*: prefetch memory traffic "does not contend with the
//! normal data traffic, but only with other prefetch traffic". This
//! module models that single channel: operations (prefetch fetches and
//! RP's LRU-stack pointer updates) occupy the channel back-to-back for
//! [`TimingParams::memory_op_cost`] cycles each, and the engine can ask
//! when a given page's prefetch will arrive — a demand miss whose
//! prefetch "has already been issued … is made to stall until the entry
//! arrives".
//!
//! [`TimingParams::memory_op_cost`]: crate::TimingParams

use std::collections::HashMap;

use tlbsim_core::VirtPage;

/// A single serialized memory channel carrying prefetch-related traffic.
///
/// # Examples
///
/// ```
/// use tlbsim_core::VirtPage;
/// use tlbsim_mem::PrefetchChannel;
///
/// let mut ch = PrefetchChannel::new(50);
/// let done1 = ch.issue_fetch(0, VirtPage::new(1));
/// let done2 = ch.issue_fetch(0, VirtPage::new(2));
/// assert_eq!(done1, 50);
/// assert_eq!(done2, 100); // serialized behind the first
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchChannel {
    op_cost: u64,
    busy_until: u64,
    in_flight: HashMap<VirtPage, u64>,
    ops_issued: u64,
    fetches_issued: u64,
}

impl PrefetchChannel {
    /// Creates a channel whose operations take `op_cost` cycles each.
    pub fn new(op_cost: u64) -> Self {
        PrefetchChannel {
            op_cost,
            busy_until: 0,
            in_flight: HashMap::new(),
            ops_issued: 0,
            fetches_issued: 0,
        }
    }

    /// Returns `true` if any earlier operation is still outstanding at
    /// `now` — the condition under which the paper's RP variant skips its
    /// prefetches and only updates the LRU stack.
    pub fn is_busy(&self, now: u64) -> bool {
        self.busy_until > now
    }

    /// Issues a page-table fetch for `page`, returning its completion
    /// cycle.
    pub fn issue_fetch(&mut self, now: u64, page: VirtPage) -> u64 {
        let done = self.occupy(now);
        self.fetches_issued += 1;
        self.in_flight.insert(page, done);
        done
    }

    /// Issues `count` state-maintenance operations (e.g. RP pointer
    /// writes), returning the cycle the last one completes.
    pub fn issue_maintenance(&mut self, now: u64, count: u32) -> u64 {
        let mut done = self.busy_until.max(now);
        for _ in 0..count {
            done = self.occupy(now);
        }
        done
    }

    fn occupy(&mut self, now: u64) -> u64 {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.op_cost;
        self.ops_issued += 1;
        self.busy_until
    }

    /// If a fetch for `page` has been issued and not yet consumed,
    /// returns its completion cycle.
    pub fn pending_completion(&self, page: VirtPage) -> Option<u64> {
        self.in_flight.get(&page).copied()
    }

    /// Removes the in-flight record for `page` (its data has been
    /// consumed or installed).
    pub fn consume(&mut self, page: VirtPage) -> Option<u64> {
        self.in_flight.remove(&page)
    }

    /// Drops in-flight records that completed at or before `now`,
    /// invoking `deliver` for each — the engine installs these into the
    /// prefetch buffer.
    pub fn drain_arrived(&mut self, now: u64, mut deliver: impl FnMut(VirtPage)) {
        let arrived: Vec<VirtPage> = self
            .in_flight
            .iter()
            .filter(|(_, done)| **done <= now)
            .map(|(page, _)| *page)
            .collect();
        for page in arrived {
            self.in_flight.remove(&page);
            deliver(page);
        }
    }

    /// Number of issued fetches not yet consumed or delivered.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Total channel operations issued (fetches + maintenance).
    pub fn ops_issued(&self) -> u64 {
        self.ops_issued
    }

    /// Page-table fetches issued (excludes maintenance).
    pub fn fetches_issued(&self) -> u64 {
        self.fetches_issued
    }

    /// The cycle at which the channel goes idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_serialize() {
        let mut ch = PrefetchChannel::new(50);
        assert_eq!(ch.issue_fetch(0, VirtPage::new(1)), 50);
        assert_eq!(ch.issue_fetch(0, VirtPage::new(2)), 100);
        assert_eq!(ch.issue_fetch(120, VirtPage::new(3)), 170);
        assert_eq!(ch.ops_issued(), 3);
    }

    #[test]
    fn maintenance_occupies_the_same_channel() {
        let mut ch = PrefetchChannel::new(50);
        assert_eq!(ch.issue_maintenance(0, 4), 200);
        // A fetch issued at cycle 10 queues behind the pointer updates.
        assert_eq!(ch.issue_fetch(10, VirtPage::new(1)), 250);
        assert_eq!(ch.fetches_issued(), 1);
        assert_eq!(ch.ops_issued(), 5);
    }

    #[test]
    fn zero_maintenance_is_free() {
        let mut ch = PrefetchChannel::new(50);
        assert_eq!(ch.issue_maintenance(7, 0), 7);
        assert!(!ch.is_busy(7));
    }

    #[test]
    fn busy_predicate_matches_occupancy() {
        let mut ch = PrefetchChannel::new(50);
        ch.issue_fetch(0, VirtPage::new(1));
        assert!(ch.is_busy(0));
        assert!(ch.is_busy(49));
        assert!(!ch.is_busy(50));
    }

    #[test]
    fn pending_and_consume() {
        let mut ch = PrefetchChannel::new(50);
        ch.issue_fetch(0, VirtPage::new(1));
        assert_eq!(ch.pending_completion(VirtPage::new(1)), Some(50));
        assert_eq!(ch.consume(VirtPage::new(1)), Some(50));
        assert_eq!(ch.pending_completion(VirtPage::new(1)), None);
    }

    #[test]
    fn drain_delivers_only_arrived_fetches() {
        let mut ch = PrefetchChannel::new(50);
        ch.issue_fetch(0, VirtPage::new(1)); // done at 50
        ch.issue_fetch(0, VirtPage::new(2)); // done at 100
        let mut delivered = Vec::new();
        ch.drain_arrived(60, |p| delivered.push(p.number()));
        assert_eq!(delivered, vec![1]);
        ch.drain_arrived(100, |p| delivered.push(p.number()));
        assert_eq!(delivered, vec![1, 2]);
    }

    #[test]
    fn reissued_page_keeps_latest_completion() {
        let mut ch = PrefetchChannel::new(50);
        ch.issue_fetch(0, VirtPage::new(1));
        ch.issue_fetch(0, VirtPage::new(1));
        assert_eq!(ch.pending_completion(VirtPage::new(1)), Some(100));
    }
}
