//! Job specification, resolution, and execution.
//!
//! A [`JobSpec`] is the client's portable description of one simulation
//! run: an input source (trace file or registered application model), a
//! prefetching scheme, and execution knobs (shards, decode policy,
//! snapshot cadence, chaos budget). The daemon [`resolve`]s it — early,
//! before queueing, so a bad path or geometry fails the submit rather
//! than a worker — into a [`ResolvedJob`], then a worker [`execute`]s
//! that against the existing simulation engines.
//!
//! Every failure is a typed [`ErrorCode`] plus a one-line message,
//! carried back to the client in a `JobError` frame; the daemon never
//! dies for a job's sake.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tlbsim_core::PrefetcherConfig;
use tlbsim_sim::{
    resolve_shards, run_app_checkpointed, run_app_sharded, run_mix_sharded, Engine, RunHealth,
    SimConfig, SimError, SimStats, SwitchPolicy, SHARD_ATTEMPTS,
};
use tlbsim_trace::{DecodePolicy, FaultKind, FaultPlan};
use tlbsim_workloads::{
    find_app, ChaosSpec, MultiStreamSpec, Scale, Schedule, StreamSpec, TraceWorkload,
};

/// Where a job's reference stream comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A recorded `.tlbt` trace file, by path *on the daemon's host*.
    Trace {
        /// Filesystem path the daemon opens.
        path: String,
    },
    /// A registered synthetic application model, by name (`gap`,
    /// `galgel`, …).
    App {
        /// Registered model name.
        name: String,
    },
    /// A multiprogrammed mix of registered application models,
    /// round-robin interleaved and run under the job's
    /// [`switch_policy`](JobSpec::switch_policy).
    Mix {
        /// Registered model names, one per stream (at least two).
        apps: Vec<String>,
        /// Round-robin quantum in accesses.
        quantum: u64,
    },
}

/// A client's description of one simulation run.
///
/// Construct with [`JobSpec::trace`] or [`JobSpec::app`] and adjust the
/// public fields; the defaults mirror `xp replay`: paper-default
/// distance scheme, strict decode, auto shards, no snapshots, no chaos.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The reference stream to simulate.
    pub source: JobSource,
    /// The prefetching scheme under test.
    pub scheme: PrefetcherConfig,
    /// Workload scale (ignored by trace sources, which always replay
    /// the full recording).
    pub scale: Scale,
    /// Worker shards; `0` means auto (machine parallelism clamped by
    /// stream length). A snapshot cadence forces the single-engine
    /// checkpointed path regardless of this field — incremental
    /// publishing is defined on the sequential engine.
    pub shards: u32,
    /// How damaged trace records are handled at open.
    pub policy: DecodePolicy,
    /// Emit a cumulative `Snapshot` frame every this many accesses;
    /// `0` disables incremental publishing.
    pub snapshot_every: u64,
    /// Chaos drill: inject this many budgeted worker panics at the
    /// stream head. `0` (the default) runs clean; `1` exercises the
    /// retry path observably (`health.retries == 1`, result unchanged);
    /// more than [`SHARD_ATTEMPTS`] makes the failure persistent and
    /// the job errors typed while the daemon keeps serving.
    pub fault_panics: u64,
    /// Context-switch semantics for [`JobSource::Mix`] jobs (ignored by
    /// single-stream sources, which never switch). Defaults to the
    /// flush-on-switch oracle.
    pub switch_policy: SwitchPolicy,
}

impl JobSpec {
    fn defaults(source: JobSource) -> Self {
        JobSpec {
            source,
            scheme: PrefetcherConfig::distance(),
            scale: Scale::SMALL,
            shards: 0,
            policy: DecodePolicy::Strict,
            snapshot_every: 0,
            fault_panics: 0,
            switch_policy: SwitchPolicy::FlushOnSwitch,
        }
    }

    /// A job replaying the trace file at `path` with default knobs.
    pub fn trace(path: impl Into<String>) -> Self {
        Self::defaults(JobSource::Trace { path: path.into() })
    }

    /// A job running the registered application model `name` with
    /// default knobs.
    pub fn app(name: impl Into<String>) -> Self {
        Self::defaults(JobSource::App { name: name.into() })
    }

    /// A job interleaving the registered models `apps` round-robin with
    /// `quantum` accesses per turn, switched under the flush oracle
    /// until [`switch_policy`](JobSpec::switch_policy) says otherwise.
    pub fn mix(apps: impl IntoIterator<Item = impl Into<String>>, quantum: u64) -> Self {
        Self::defaults(JobSource::Mix {
            apps: apps.into_iter().map(Into::into).collect(),
            quantum,
        })
    }
}

/// Typed classification of a job failure, carried in `JobError` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The daemon's bounded run queue is full; resubmit later.
    QueueFull,
    /// The job named an application model the registry doesn't have.
    UnknownApp,
    /// The trace file could not be opened, validated, or decoded
    /// within its policy's budget.
    Trace,
    /// The simulation configuration was rejected (bad geometry) or the
    /// run failed with a typed simulator error.
    Sim,
    /// The run panicked persistently — every retry and the degraded
    /// path included. The daemon itself is unaffected.
    Panicked,
    /// The client cancelled the job before it completed.
    Cancelled,
    /// The daemon is shutting down without draining; the job was
    /// dropped from the queue unrun.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire tag for this code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 0,
            ErrorCode::UnknownApp => 1,
            ErrorCode::Trace => 2,
            ErrorCode::Sim => 3,
            ErrorCode::Panicked => 4,
            ErrorCode::Cancelled => 5,
            ErrorCode::ShuttingDown => 6,
        }
    }

    /// Decodes a wire tag; `None` for unassigned values.
    pub fn from_u8(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => ErrorCode::QueueFull,
            1 => ErrorCode::UnknownApp,
            2 => ErrorCode::Trace,
            3 => ErrorCode::Sim,
            4 => ErrorCode::Panicked,
            5 => ErrorCode::Cancelled,
            6 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::UnknownApp => "unknown-app",
            ErrorCode::Trace => "trace",
            ErrorCode::Sim => "sim",
            ErrorCode::Panicked => "panicked",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::ShuttingDown => "shutting-down",
        })
    }
}

/// A job failure as (class, one-line diagnosis) — the payload of a
/// `JobError` frame.
pub type JobFailure = (ErrorCode, String);

/// A validated, runnable job: stream resolved and fully scanned,
/// configuration proven constructible, shard count finalised.
pub struct ResolvedJob {
    /// The stream to drive (possibly chaos-wrapped).
    pub spec: Arc<dyn StreamSpec>,
    /// For [`JobSource::Mix`] jobs, the interleave itself — executed
    /// switch-aware through `run_mix_sharded` instead of the
    /// single-stream runners.
    pub mix: Option<Arc<MultiStreamSpec>>,
    /// Context-switch semantics for the mix (carried even for
    /// single-stream jobs, where it is inert).
    pub switch_policy: SwitchPolicy,
    /// Workload scale to instantiate the stream at.
    pub scale: Scale,
    /// The full simulation configuration (paper defaults around the
    /// job's scheme).
    pub config: SimConfig,
    /// Final shard count (auto already resolved against stream length).
    pub shards: usize,
    /// Exact accesses the run will simulate.
    pub stream_len: u64,
    /// Snapshot cadence in accesses (`0` = none).
    pub snapshot_every: u64,
    /// Input records the decode policy quarantined at open.
    pub quarantined_records: u64,
}

// Not derivable: `Arc<dyn StreamSpec>` has no `Debug`.
impl std::fmt::Debug for ResolvedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedJob")
            .field("spec", &self.spec.name())
            .field("scale", &self.scale)
            .field("shards", &self.shards)
            .field("stream_len", &self.stream_len)
            .field("snapshot_every", &self.snapshot_every)
            .field("quarantined_records", &self.quarantined_records)
            .finish_non_exhaustive()
    }
}

/// Validates a [`JobSpec`] into a [`ResolvedJob`].
///
/// All fallible setup happens here, at submit time: the trace is opened
/// and fully scanned under the job's decode policy, the application
/// name is looked up, the simulation configuration is proven
/// constructible, and `shards == 0` is resolved against the stream
/// length. A job that resolves cannot fail to *start*; it can still
/// fail to *finish* (panic chaos, concurrent file modification).
///
/// # Errors
///
/// A [`JobFailure`] naming exactly what was rejected.
pub fn resolve(job: &JobSpec) -> Result<ResolvedJob, JobFailure> {
    let config = SimConfig::paper_default().with_prefetcher(job.scheme.clone());
    Engine::new(&config).map_err(|e| (ErrorCode::Sim, e.to_string()))?;

    let mut mix = None;
    let spec: Arc<dyn StreamSpec> = match &job.source {
        JobSource::Trace { path } => Arc::new(
            TraceWorkload::open_with_policy(path, job.policy)
                .map_err(|e| (ErrorCode::Trace, format!("{path}: {e}")))?,
        ),
        JobSource::App { name } => Arc::new(find_app(name).ok_or_else(|| {
            (
                ErrorCode::UnknownApp,
                format!("no registered application model named {name:?}"),
            )
        })?),
        JobSource::Mix { apps, quantum } => {
            if job.snapshot_every > 0 {
                return Err((
                    ErrorCode::Sim,
                    "snapshots are not supported for mix sources".to_owned(),
                ));
            }
            if job.fault_panics > 0 {
                return Err((
                    ErrorCode::Sim,
                    "chaos injection is not supported for mix sources".to_owned(),
                ));
            }
            if matches!(job.switch_policy, SwitchPolicy::Asid { contexts: 0, .. }) {
                return Err((ErrorCode::Sim, SimError::ZeroAsidContexts.to_string()));
            }
            let streams = apps
                .iter()
                .map(|name| {
                    find_app(name)
                        .map(|app| Arc::new(app) as Arc<dyn StreamSpec>)
                        .ok_or_else(|| {
                            (
                                ErrorCode::UnknownApp,
                                format!("no registered application model named {name:?}"),
                            )
                        })
                })
                .collect::<Result<Vec<_>, _>>()?;
            let spec = MultiStreamSpec::new(streams, Schedule::RoundRobin { quantum: *quantum })
                .map_err(|e| (ErrorCode::Sim, e.to_string()))?;
            mix.insert(Arc::new(spec)).clone()
        }
    };
    let quarantined_records = spec.quarantined_records();

    // Chaos drill: plant budgeted panics on the first decoded access,
    // so retries are exercised deterministically regardless of shard
    // layout.
    let spec: Arc<dyn StreamSpec> = if job.fault_panics > 0 {
        Arc::new(ChaosSpec::new(
            spec,
            FaultPlan::new().with(0, FaultKind::WorkerPanic),
            job.fault_panics,
        ))
    } else {
        spec
    };

    let stream_len = spec.stream_len(job.scale);
    // Incremental publishing is defined on the sequential checkpointed
    // engine, so a snapshot cadence pins the run to one shard.
    let shards = if job.snapshot_every > 0 {
        1
    } else {
        resolve_shards(job.shards as usize, stream_len)
    };
    Ok(ResolvedJob {
        spec,
        mix,
        switch_policy: job.switch_policy,
        scale: job.scale,
        config,
        shards,
        stream_len,
        snapshot_every: job.snapshot_every,
        quarantined_records,
    })
}

/// Stringifies a panic payload the way the sharded executor does, so
/// `Panicked` job errors read identically across both run paths.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_owned()
    }
}

fn map_sim_error(err: SimError) -> JobFailure {
    match &err {
        SimError::ShardPanicked { .. } => (ErrorCode::Panicked, err.to_string()),
        _ => (ErrorCode::Sim, err.to_string()),
    }
}

/// Runs a resolved job to completion on the calling thread.
///
/// * `shards > 1` — the self-healing sharded executor runs the stream;
///   no snapshots are emitted (cadence `0` is guaranteed by
///   [`resolve`]) and cancellation is only observed before launch.
/// * `shards == 1` — the sequential engine runs checkpointed: every
///   `snapshot_every` accesses `emit(seq, accesses_done, stats)` is
///   called with cumulative statistics, and `cancel` is polled at the
///   same boundaries. A panicking attempt (chaos, poisoned input) is
///   retried up to [`SHARD_ATTEMPTS`] times — snapshot sequence
///   numbers restart from 1 so the client sees a coherent restarted
///   stream — before surfacing as [`ErrorCode::Panicked`].
///
/// The returned statistics are bit-identical to the equivalent batch
/// `run_app` / `run_app_sharded` call — the service differential tests
/// pin this end to end.
///
/// # Errors
///
/// A [`JobFailure`]: `Cancelled`, `Panicked`, or `Sim`.
pub fn execute(
    job: &ResolvedJob,
    cancel: &AtomicBool,
    mut emit: impl FnMut(u64, u64, &SimStats),
) -> Result<(SimStats, RunHealth), JobFailure> {
    if cancel.load(Ordering::SeqCst) {
        return Err((
            ErrorCode::Cancelled,
            "cancelled before the run started".to_owned(),
        ));
    }

    if let Some(mix) = &job.mix {
        // Mix jobs always run switch-aware (shards = 1 degenerates to
        // the sequential interleave, bit-identically).
        let run = run_mix_sharded(mix, job.scale, &job.config, job.switch_policy, job.shards)
            .map_err(map_sim_error)?;
        return Ok((run.merged, run.health));
    }

    if job.shards > 1 {
        let run = run_app_sharded(job.spec.as_ref(), job.scale, &job.config, job.shards)
            .map_err(map_sim_error)?;
        return Ok((run.merged, run.health));
    }

    let mut retries = 0u64;
    loop {
        let mut seq = 0u64;
        let mut cancelled = false;
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_app_checkpointed(
                job.spec.as_ref(),
                job.scale,
                &job.config,
                job.snapshot_every,
                |accesses_done, stats| {
                    if cancel.load(Ordering::SeqCst) {
                        cancelled = true;
                        return std::ops::ControlFlow::Break(());
                    }
                    seq += 1;
                    emit(seq, accesses_done, stats);
                    std::ops::ControlFlow::Continue(())
                },
            )
        }));
        match attempt {
            Ok(Ok(stats)) => {
                if cancelled {
                    return Err((
                        ErrorCode::Cancelled,
                        format!("cancelled after snapshot {seq}"),
                    ));
                }
                let health = RunHealth {
                    retries,
                    degraded_shards: 0,
                    quarantined_records: job.quarantined_records,
                };
                return Ok((stats, health));
            }
            Ok(Err(err)) => return Err(map_sim_error(err)),
            Err(payload) => {
                retries += 1;
                if retries >= SHARD_ATTEMPTS as u64 {
                    return Err((
                        ErrorCode::Panicked,
                        format!(
                            "run panicked {retries} times; giving up: {}",
                            panic_message(payload)
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbsim_sim::run_app;

    #[test]
    fn error_codes_roundtrip_and_unknown_tags_are_none() {
        for tag in 0..=6u8 {
            let code = ErrorCode::from_u8(tag).unwrap();
            assert_eq!(code.as_u8(), tag);
            assert!(!code.to_string().is_empty());
        }
        assert_eq!(ErrorCode::from_u8(7), None);
        assert_eq!(ErrorCode::from_u8(255), None);
    }

    #[test]
    fn resolve_rejects_unknown_apps_and_missing_traces_typed() {
        let (code, msg) = resolve(&JobSpec::app("no-such-app")).unwrap_err();
        assert_eq!(code, ErrorCode::UnknownApp);
        assert!(msg.contains("no-such-app"));
        let (code, _) = resolve(&JobSpec::trace("/nonexistent/path.tlbt")).unwrap_err();
        assert_eq!(code, ErrorCode::Trace);
    }

    #[test]
    fn snapshot_cadence_forces_one_shard() {
        let mut job = JobSpec::app("gap");
        job.shards = 4;
        job.snapshot_every = 1000;
        assert_eq!(resolve(&job).unwrap().shards, 1);
        job.snapshot_every = 0;
        assert_eq!(resolve(&job).unwrap().shards, 4);
    }

    #[test]
    fn executed_job_is_bit_identical_to_batch_run_app() {
        let mut job = JobSpec::app("gap");
        job.scale = Scale::TINY;
        job.shards = 1;
        job.snapshot_every = 3000;
        let resolved = resolve(&job).unwrap();
        let mut snapshots = Vec::new();
        let (stats, health) = execute(&resolved, &AtomicBool::new(false), |seq, done, s| {
            snapshots.push((seq, done, s.clone()));
        })
        .unwrap();
        let app = find_app("gap").unwrap();
        let batch = run_app(&app, Scale::TINY, &resolved.config).unwrap();
        assert_eq!(stats, batch);
        assert_eq!(health.retries, 0);
        let expected = resolved.stream_len.div_ceil(3000);
        assert_eq!(snapshots.len() as u64, expected);
        let (last_seq, last_done, last_stats) = snapshots.last().cloned().unwrap();
        assert_eq!(last_seq, expected);
        assert_eq!(last_done, resolved.stream_len);
        assert_eq!(last_stats, batch, "final snapshot equals the final result");
    }

    #[test]
    fn cancellation_stops_at_a_checkpoint_boundary() {
        let mut job = JobSpec::app("gap");
        job.scale = Scale::TINY;
        job.snapshot_every = 1000;
        let resolved = resolve(&job).unwrap();
        let cancel = AtomicBool::new(false);
        let mut seen = 0u64;
        let err = execute(&resolved, &cancel, |_, _, _| {
            seen += 1;
            if seen == 2 {
                cancel.store(true, Ordering::SeqCst);
            }
        })
        .unwrap_err();
        assert_eq!(err.0, ErrorCode::Cancelled);
        assert_eq!(seen, 2, "no snapshots after the cancel");
    }

    #[test]
    fn one_budgeted_panic_is_retried_and_the_result_is_unchanged() {
        let mut job = JobSpec::app("gap");
        job.scale = Scale::TINY;
        job.shards = 1;
        job.fault_panics = 1;
        let resolved = resolve(&job).unwrap();
        let (stats, health) = execute(&resolved, &AtomicBool::new(false), |_, _, _| {}).unwrap();
        assert_eq!(health.retries, 1);
        let app = find_app("gap").unwrap();
        let batch = run_app(&app, Scale::TINY, &resolved.config).unwrap();
        assert_eq!(stats, batch);
    }

    #[test]
    fn persistent_panics_surface_typed_not_fatal() {
        let mut job = JobSpec::app("gap");
        job.scale = Scale::TINY;
        job.shards = 1;
        job.fault_panics = SHARD_ATTEMPTS as u64 + 1;
        let resolved = resolve(&job).unwrap();
        let (code, msg) = execute(&resolved, &AtomicBool::new(false), |_, _, _| {}).unwrap_err();
        assert_eq!(code, ErrorCode::Panicked);
        assert!(
            msg.contains("chaos"),
            "diagnosis carries the panic text: {msg}"
        );
    }
}
