//! The `TLBS` wire protocol: length-prefixed, versioned binary frames.
//!
//! Every frame on the stream is a 4-byte little-endian payload length
//! followed by the payload; the payload's first byte is the frame kind,
//! the rest is kind-specific. The normative layout of every frame lives
//! in `docs/PROTOCOL.md` — this module is the reference codec.
//!
//! Decoding is **total**: any byte sequence either decodes to a
//! [`Frame`] or returns a typed [`FrameError`] — never a panic and
//! never a partial value. Unknown frame kinds, unknown enum tags,
//! truncated payloads, oversized lengths, non-UTF-8 strings, and
//! trailing garbage are each their own error, so a damaged or hostile
//! peer produces a one-line diagnosis rather than a dead daemon
//! (`tests/protocol.rs` pins totality property-style).

use std::io::{Read, Write};

use tlbsim_core::{Associativity, ConfidenceConfig, PrefetcherConfig, PrefetcherKind};
use tlbsim_sim::{
    PerStreamStats, RunHealth, SimStats, StreamStats, SwitchPolicy, TablePolicy, MAX_STREAMS,
};
use tlbsim_trace::DecodePolicy;
use tlbsim_workloads::Scale;

use crate::job::{ErrorCode, JobSource, JobSpec};

/// Protocol version spoken by this build; exchanged in [`Frame::Hello`].
///
/// v2 widened the per-stream breakdown count to a `u16` (mixes of
/// hundreds of streams), added `footprint_pages` to each per-stream
/// record, and grew `JobSpec` with a mix source and a switch policy.
///
/// v3 grew the scheme record for the adaptive mechanism families:
/// kind tags 6 (trend-vote stride, `TP`) and 7 (set-dueling ensemble,
/// `EP`), plus three new trailing fields on every scheme — the trend
/// window (`u32`), an optional confidence throttle (presence byte +
/// threshold `u8` + max degree `u32`), and the ensemble component
/// list (`u8` count + one kind byte per component).
pub const PROTOCOL_VERSION: u16 = 3;

/// Upper bound on one frame's payload, in bytes. A length prefix above
/// this is rejected before any allocation, so garbage on the socket
/// cannot make the daemon reserve gigabytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// A decoding failure: what exactly was wrong with the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The payload ended before the field being read.
    Truncated {
        /// Which field was being decoded when the bytes ran out.
        field: &'static str,
    },
    /// The first payload byte is not a known frame kind.
    UnknownKind(u8),
    /// An enum field carried an unassigned tag value.
    UnknownTag {
        /// Which enum field carried the bad tag.
        field: &'static str,
        /// The unassigned tag value.
        tag: u8,
    },
    /// The 4-byte length prefix exceeds [`MAX_FRAME_BYTES`] (or is 0).
    BadLength(u32),
    /// A string field held non-UTF-8 bytes.
    BadUtf8 {
        /// Which string field was malformed.
        field: &'static str,
    },
    /// A numeric field held a value outside its domain (e.g. a zero
    /// scale factor, a per-stream width above the supported maximum).
    BadValue {
        /// Which field was out of domain.
        field: &'static str,
    },
    /// The payload decoded cleanly but bytes were left over.
    TrailingBytes {
        /// How many undecoded bytes followed the frame.
        extra: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { field } => write!(f, "frame truncated while reading {field}"),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind:#04x}"),
            FrameError::UnknownTag { field, tag } => {
                write!(f, "unknown tag {tag} for {field}")
            }
            FrameError::BadLength(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME_BYTES} bytes")
            }
            FrameError::BadUtf8 { field } => write!(f, "{field} is not valid UTF-8"),
            FrameError::BadValue { field } => write!(f, "{field} holds an out-of-domain value"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A transport-level failure around frame I/O.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly at a frame boundary.
    Disconnected,
    /// An I/O failure mid-frame (includes torn frames at EOF).
    Io(std::io::Error),
    /// The bytes on the wire did not decode (see [`FrameError`]).
    Frame(FrameError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Disconnected => f.write_str("peer disconnected"),
            WireError::Io(e) => write!(f, "socket i/o: {e}"),
            WireError::Frame(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version handshake; first frame from each side.
    Hello {
        /// Protocol version the sender speaks.
        version: u16,
    },
    /// Client → server: run this job; correlate replies by `job_id`.
    Submit {
        /// Client-chosen correlation id, echoed on every reply.
        job_id: u64,
        /// What to run and how.
        job: JobSpec,
    },
    /// Server → client: the job was admitted to the run queue.
    Accepted {
        /// Correlation id from the submit.
        job_id: u64,
        /// Worker shards the run will actually use (auto resolved).
        shards: u32,
        /// Exact accesses the job will simulate.
        stream_len: u64,
    },
    /// Server → client: an incremental cumulative-statistics
    /// checkpoint (only for jobs submitted with a snapshot cadence).
    Snapshot {
        /// Correlation id from the submit.
        job_id: u64,
        /// Checkpoint sequence number, from 1; restarts from 1 if a
        /// panicked attempt was retried.
        seq: u64,
        /// Accesses simulated so far.
        accesses_done: u64,
        /// Cumulative statistics — the last snapshot equals the final
        /// result bit for bit.
        stats: SimStats,
    },
    /// Server → client: the job finished; `stats` is bit-identical to
    /// the equivalent batch run.
    Done {
        /// Correlation id from the submit.
        job_id: u64,
        /// Final statistics.
        stats: SimStats,
        /// What recovery the run needed (all-zero on the happy path).
        health: RunHealth,
    },
    /// Server → client: the job failed; the daemon keeps serving.
    JobError {
        /// Correlation id from the submit.
        job_id: u64,
        /// Typed failure class.
        code: ErrorCode,
        /// One-line diagnosis.
        message: String,
    },
    /// Client → server: stop a submitted job at its next checkpoint.
    Cancel {
        /// Correlation id of the job to stop.
        job_id: u64,
    },
    /// Client → server: stop the daemon.
    Shutdown {
        /// `true`: finish queued jobs first; `false`: fail queued jobs
        /// with [`ErrorCode::ShuttingDown`] and stop after in-flight
        /// jobs complete.
        drain: bool,
    },
    /// Server → client: shutdown acknowledged; the daemon exits once
    /// in-flight (and, when draining, queued) jobs are finished.
    ShuttingDown,
}

const KIND_HELLO: u8 = 0x01;
const KIND_SUBMIT: u8 = 0x02;
const KIND_ACCEPTED: u8 = 0x03;
const KIND_SNAPSHOT: u8 = 0x04;
const KIND_DONE: u8 = 0x05;
const KIND_JOB_ERROR: u8 = 0x06;
const KIND_CANCEL: u8 = 0x07;
const KIND_SHUTDOWN: u8 = 0x08;
const KIND_SHUTTING_DOWN: u8 = 0x09;

/// Bounds-checked sequential reader over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.bytes.len())
            .ok_or(FrameError::Truncated { field })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, field)?[0])
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, FrameError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(FrameError::UnknownTag { field, tag }),
        }
    }

    fn u16(&mut self, field: &'static str) -> Result<u16, FrameError> {
        let b = self.take(2, field)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, field: &'static str) -> Result<String, FrameError> {
        let len = self.u16(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8 { field })
    }

    fn finish(&self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes {
                extra: self.bytes.len() - self.pos,
            })
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_string(buf: &mut Vec<u8>, s: &str) -> Result<(), FrameError> {
    let len = u16::try_from(s.len()).map_err(|_| FrameError::BadValue {
        field: "string length",
    })?;
    put_u16(buf, len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

fn encode_stats(buf: &mut Vec<u8>, stats: &SimStats) -> Result<(), FrameError> {
    put_u64(buf, stats.accesses);
    put_u64(buf, stats.misses);
    put_u64(buf, stats.prefetch_buffer_hits);
    put_u64(buf, stats.demand_walks);
    put_u64(buf, stats.prefetches_issued);
    put_u64(buf, stats.prefetches_filtered);
    put_u64(buf, stats.prefetches_evicted_unused);
    put_u64(buf, stats.maintenance_ops);
    put_u64(buf, stats.footprint_pages);
    let streams = stats.per_stream.streams();
    // MAX_STREAMS keeps this unreachable today, but a silent `as u16`
    // here would truncate quietly if that bound ever grew — every
    // count on the wire goes through a checked conversion.
    let count = u16::try_from(streams.len()).map_err(|_| FrameError::BadValue {
        field: "stats.per_stream.len",
    })?;
    put_u16(buf, count);
    for s in streams {
        put_u64(buf, s.accesses);
        put_u64(buf, s.misses);
        put_u64(buf, s.prefetch_buffer_hits);
        put_u64(buf, s.demand_walks);
        put_u64(buf, s.prefetches_issued);
        put_u64(buf, s.footprint_pages);
    }
    Ok(())
}

fn decode_stats(r: &mut Reader<'_>) -> Result<SimStats, FrameError> {
    let mut stats = SimStats {
        accesses: r.u64("stats.accesses")?,
        misses: r.u64("stats.misses")?,
        prefetch_buffer_hits: r.u64("stats.prefetch_buffer_hits")?,
        demand_walks: r.u64("stats.demand_walks")?,
        prefetches_issued: r.u64("stats.prefetches_issued")?,
        prefetches_filtered: r.u64("stats.prefetches_filtered")?,
        prefetches_evicted_unused: r.u64("stats.prefetches_evicted_unused")?,
        maintenance_ops: r.u64("stats.maintenance_ops")?,
        footprint_pages: r.u64("stats.footprint_pages")?,
        per_stream: PerStreamStats::default(),
    };
    let width = r.u16("stats.per_stream.len")? as usize;
    if width > MAX_STREAMS {
        return Err(FrameError::BadValue {
            field: "stats.per_stream.len",
        });
    }
    if width > 0 {
        let mut per = PerStreamStats::with_streams(width);
        for index in 0..width {
            let share = StreamStats {
                accesses: r.u64("stats.per_stream.accesses")?,
                misses: r.u64("stats.per_stream.misses")?,
                prefetch_buffer_hits: r.u64("stats.per_stream.prefetch_buffer_hits")?,
                demand_walks: r.u64("stats.per_stream.demand_walks")?,
                prefetches_issued: r.u64("stats.per_stream.prefetches_issued")?,
                footprint_pages: r.u64("stats.per_stream.footprint_pages")?,
            };
            per.record(index, &share);
        }
        stats.per_stream = per;
    }
    Ok(stats)
}

fn encode_switch_policy(buf: &mut Vec<u8>, policy: &SwitchPolicy) -> Result<(), FrameError> {
    match policy {
        SwitchPolicy::None => {
            buf.push(0);
            put_u64(buf, 0);
            buf.push(0);
        }
        SwitchPolicy::FlushOnSwitch => {
            buf.push(1);
            put_u64(buf, 0);
            buf.push(0);
        }
        SwitchPolicy::Asid { contexts, tables } => {
            buf.push(2);
            let contexts = u64::try_from(*contexts).map_err(|_| FrameError::BadValue {
                field: "job.switch_policy.contexts",
            })?;
            put_u64(buf, contexts);
            buf.push(match tables {
                TablePolicy::Shared => 0,
                TablePolicy::Partitioned => 1,
            });
        }
    }
    Ok(())
}

fn decode_switch_policy(r: &mut Reader<'_>) -> Result<SwitchPolicy, FrameError> {
    let tag = r.u8("job.switch_policy")?;
    let contexts = r.u64("job.switch_policy.contexts")?;
    let tables = match r.u8("job.switch_policy.tables")? {
        0 => TablePolicy::Shared,
        1 => TablePolicy::Partitioned,
        tag => {
            return Err(FrameError::UnknownTag {
                field: "job.switch_policy.tables",
                tag,
            })
        }
    };
    match tag {
        0 => Ok(SwitchPolicy::None),
        1 => Ok(SwitchPolicy::FlushOnSwitch),
        2 => {
            let contexts = usize::try_from(contexts).map_err(|_| FrameError::BadValue {
                field: "job.switch_policy.contexts",
            })?;
            Ok(SwitchPolicy::Asid { contexts, tables })
        }
        tag => Err(FrameError::UnknownTag {
            field: "job.switch_policy",
            tag,
        }),
    }
}

fn encode_health(buf: &mut Vec<u8>, health: &RunHealth) {
    put_u64(buf, health.retries);
    put_u64(buf, health.degraded_shards);
    put_u64(buf, health.quarantined_records);
}

fn decode_health(r: &mut Reader<'_>) -> Result<RunHealth, FrameError> {
    Ok(RunHealth {
        retries: r.u64("health.retries")?,
        degraded_shards: r.u64("health.degraded_shards")?,
        quarantined_records: r.u64("health.quarantined_records")?,
    })
}

fn kind_to_u8(kind: PrefetcherKind) -> u8 {
    match kind {
        PrefetcherKind::None => 0,
        PrefetcherKind::Sequential => 1,
        PrefetcherKind::Stride => 2,
        PrefetcherKind::Markov => 3,
        PrefetcherKind::Recency => 4,
        PrefetcherKind::Distance => 5,
        PrefetcherKind::TrendStride => 6,
        PrefetcherKind::Ensemble => 7,
    }
}

fn kind_from_u8(tag: u8, field: &'static str) -> Result<PrefetcherKind, FrameError> {
    Ok(match tag {
        0 => PrefetcherKind::None,
        1 => PrefetcherKind::Sequential,
        2 => PrefetcherKind::Stride,
        3 => PrefetcherKind::Markov,
        4 => PrefetcherKind::Recency,
        5 => PrefetcherKind::Distance,
        6 => PrefetcherKind::TrendStride,
        7 => PrefetcherKind::Ensemble,
        tag => return Err(FrameError::UnknownTag { field, tag }),
    })
}

fn encode_scheme(buf: &mut Vec<u8>, scheme: &PrefetcherConfig) -> Result<(), FrameError> {
    buf.push(kind_to_u8(scheme.kind()));
    let rows = u32::try_from(scheme.row_count()).map_err(|_| FrameError::BadValue {
        field: "scheme.rows",
    })?;
    let slots = u32::try_from(scheme.slot_count()).map_err(|_| FrameError::BadValue {
        field: "scheme.slots",
    })?;
    put_u32(buf, rows);
    put_u32(buf, slots);
    match scheme.associativity() {
        Associativity::Direct => {
            buf.push(0);
            put_u32(buf, 0);
        }
        Associativity::Full => {
            buf.push(1);
            put_u32(buf, 0);
        }
        Associativity::SetAssociative(ways) => {
            buf.push(2);
            let ways = u32::try_from(ways.get()).map_err(|_| FrameError::BadValue {
                field: "scheme.ways",
            })?;
            put_u32(buf, ways);
        }
    }
    buf.push(u8::from(scheme.is_pc_qualified()));
    buf.push(u8::from(scheme.is_pair_indexed()));
    let window = u32::try_from(scheme.window_len()).map_err(|_| FrameError::BadValue {
        field: "scheme.window",
    })?;
    put_u32(buf, window);
    match scheme.confidence_config() {
        None => {
            buf.push(0);
            buf.push(0);
            put_u32(buf, 0);
        }
        Some(conf) => {
            buf.push(1);
            buf.push(conf.threshold);
            put_u32(buf, conf.max_degree);
        }
    }
    let components = scheme.ensemble_components();
    let count = u8::try_from(components.len()).map_err(|_| FrameError::BadValue {
        field: "scheme.ensemble.count",
    })?;
    buf.push(count);
    for kind in components {
        buf.push(kind_to_u8(*kind));
    }
    Ok(())
}

fn decode_scheme(r: &mut Reader<'_>) -> Result<PrefetcherConfig, FrameError> {
    let kind = kind_from_u8(r.u8("scheme.kind")?, "scheme.kind")?;
    let rows = r.u32("scheme.rows")? as usize;
    let slots = r.u32("scheme.slots")? as usize;
    let assoc_tag = r.u8("scheme.assoc")?;
    let ways = r.u32("scheme.ways")? as usize;
    let assoc = match (assoc_tag, ways) {
        (0, _) => Associativity::Direct,
        (1, _) => Associativity::Full,
        (2, 0) => {
            return Err(FrameError::BadValue {
                field: "scheme.ways",
            })
        }
        (2, n) => Associativity::ways_of(n),
        (tag, _) => {
            return Err(FrameError::UnknownTag {
                field: "scheme.assoc",
                tag,
            })
        }
    };
    let pc_qualified = r.bool("scheme.pc_qualified")?;
    let pair_indexed = r.bool("scheme.pair_indexed")?;
    let window = r.u32("scheme.window")? as usize;
    let confidence = match r.u8("scheme.confidence")? {
        0 => {
            // Fixed layout: the throttle fields are present (and
            // ignored) even when no throttle is configured, mirroring
            // the switch-policy record.
            let _ = r.u8("scheme.confidence.threshold")?;
            let _ = r.u32("scheme.confidence.max_degree")?;
            None
        }
        1 => Some(ConfidenceConfig {
            threshold: r.u8("scheme.confidence.threshold")?,
            max_degree: r.u32("scheme.confidence.max_degree")?,
        }),
        tag => {
            return Err(FrameError::UnknownTag {
                field: "scheme.confidence",
                tag,
            })
        }
    };
    let count = r.u8("scheme.ensemble.count")? as usize;
    let mut components = Vec::with_capacity(count);
    for _ in 0..count {
        let component = kind_from_u8(
            r.u8("scheme.ensemble.component")?,
            "scheme.ensemble.component",
        )?;
        if component == PrefetcherKind::Ensemble {
            return Err(FrameError::BadValue {
                field: "scheme.ensemble.component",
            });
        }
        components.push(component);
    }
    // Canonical encoding: a component list appears exactly when the
    // scheme is an ensemble.
    if (kind == PrefetcherKind::Ensemble) == components.is_empty() {
        return Err(FrameError::BadValue {
            field: "scheme.ensemble.count",
        });
    }
    let mut scheme = if kind == PrefetcherKind::Ensemble {
        PrefetcherConfig::ensemble_of(&components)
    } else {
        PrefetcherConfig::new(kind)
    };
    scheme
        .rows(rows)
        .slots(slots)
        .assoc(assoc)
        .pc_qualified(pc_qualified)
        .pair_indexed(pair_indexed)
        .window(window);
    if let Some(conf) = confidence {
        scheme.confidence(conf);
    }
    Ok(scheme)
}

fn encode_job(buf: &mut Vec<u8>, job: &JobSpec) -> Result<(), FrameError> {
    match &job.source {
        JobSource::Trace { path } => {
            buf.push(0);
            put_string(buf, path)?;
        }
        JobSource::App { name } => {
            buf.push(1);
            put_string(buf, name)?;
        }
        JobSource::Mix { apps, quantum } => {
            buf.push(2);
            let count = u16::try_from(apps.len()).map_err(|_| FrameError::BadValue {
                field: "job.source.mix.count",
            })?;
            put_u16(buf, count);
            for name in apps {
                put_string(buf, name)?;
            }
            put_u64(buf, *quantum);
        }
    }
    encode_scheme(buf, &job.scheme)?;
    put_u32(buf, job.scale.factor());
    put_u32(buf, job.shards);
    match job.policy {
        DecodePolicy::Strict => {
            buf.push(0);
            put_u64(buf, 0);
        }
        DecodePolicy::Quarantine { max_bad } => {
            buf.push(1);
            put_u64(buf, max_bad);
        }
    }
    put_u64(buf, job.snapshot_every);
    put_u64(buf, job.fault_panics);
    encode_switch_policy(buf, &job.switch_policy)?;
    Ok(())
}

fn decode_job(r: &mut Reader<'_>) -> Result<JobSpec, FrameError> {
    let source = match r.u8("job.source")? {
        0 => JobSource::Trace {
            path: r.string("job.source.path")?,
        },
        1 => JobSource::App {
            name: r.string("job.source.app")?,
        },
        2 => {
            let count = r.u16("job.source.mix.count")? as usize;
            let mut apps = Vec::with_capacity(count.min(MAX_STREAMS));
            for _ in 0..count {
                apps.push(r.string("job.source.mix.app")?);
            }
            JobSource::Mix {
                apps,
                quantum: r.u64("job.source.mix.quantum")?,
            }
        }
        tag => {
            return Err(FrameError::UnknownTag {
                field: "job.source",
                tag,
            })
        }
    };
    let scheme = decode_scheme(r)?;
    let factor = r.u32("job.scale")?;
    if factor == 0 {
        return Err(FrameError::BadValue { field: "job.scale" });
    }
    let scale = Scale::new(factor);
    let shards = r.u32("job.shards")?;
    let policy = match r.u8("job.policy")? {
        0 => {
            let _ = r.u64("job.policy.budget")?;
            DecodePolicy::Strict
        }
        1 => DecodePolicy::Quarantine {
            max_bad: r.u64("job.policy.budget")?,
        },
        tag => {
            return Err(FrameError::UnknownTag {
                field: "job.policy",
                tag,
            })
        }
    };
    let snapshot_every = r.u64("job.snapshot_every")?;
    let fault_panics = r.u64("job.fault_panics")?;
    let switch_policy = decode_switch_policy(r)?;
    Ok(JobSpec {
        source,
        scheme,
        scale,
        shards,
        policy,
        snapshot_every,
        fault_panics,
        switch_policy,
    })
}

impl Frame {
    /// Encodes the frame — length prefix included — into `buf`.
    ///
    /// The buffer is cleared first and its capacity is reused, so a
    /// long-lived scratch buffer makes steady-state encoding
    /// allocation-free (pinned by the service `zero_alloc` test).
    ///
    /// # Errors
    ///
    /// [`FrameError::BadValue`] if a field cannot be represented (e.g.
    /// a string longer than a `u16` length prefix can carry).
    pub fn encode_into(&self, buf: &mut Vec<u8>) -> Result<(), FrameError> {
        buf.clear();
        buf.extend_from_slice(&[0, 0, 0, 0]); // length, patched below
        match self {
            Frame::Hello { version } => {
                buf.push(KIND_HELLO);
                put_u16(buf, *version);
            }
            Frame::Submit { job_id, job } => {
                buf.push(KIND_SUBMIT);
                put_u64(buf, *job_id);
                encode_job(buf, job)?;
            }
            Frame::Accepted {
                job_id,
                shards,
                stream_len,
            } => {
                buf.push(KIND_ACCEPTED);
                put_u64(buf, *job_id);
                put_u32(buf, *shards);
                put_u64(buf, *stream_len);
            }
            Frame::Snapshot {
                job_id,
                seq,
                accesses_done,
                stats,
            } => {
                buf.push(KIND_SNAPSHOT);
                put_u64(buf, *job_id);
                put_u64(buf, *seq);
                put_u64(buf, *accesses_done);
                encode_stats(buf, stats)?;
            }
            Frame::Done {
                job_id,
                stats,
                health,
            } => {
                buf.push(KIND_DONE);
                put_u64(buf, *job_id);
                encode_stats(buf, stats)?;
                encode_health(buf, health);
            }
            Frame::JobError {
                job_id,
                code,
                message,
            } => {
                buf.push(KIND_JOB_ERROR);
                put_u64(buf, *job_id);
                buf.push(code.as_u8());
                put_string(buf, message)?;
            }
            Frame::Cancel { job_id } => {
                buf.push(KIND_CANCEL);
                put_u64(buf, *job_id);
            }
            Frame::Shutdown { drain } => {
                buf.push(KIND_SHUTDOWN);
                buf.push(u8::from(*drain));
            }
            Frame::ShuttingDown => {
                buf.push(KIND_SHUTTING_DOWN);
            }
        }
        // The prefix is a u32 and readers cap frames at MAX_FRAME_BYTES;
        // an unrepresentable or unreadable length must fail the encode,
        // never truncate into a prefix that frames garbage.
        let payload = u32::try_from(buf.len() - 4)
            .ok()
            .filter(|&len| len as usize <= MAX_FRAME_BYTES)
            .ok_or(FrameError::BadValue {
                field: "frame length",
            })?;
        buf[..4].copy_from_slice(&payload.to_le_bytes());
        Ok(())
    }

    /// Decodes one payload (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] for any byte sequence that is not exactly
    /// one well-formed frame — decoding never panics.
    pub fn decode(payload: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(payload);
        let frame = match r.u8("frame kind")? {
            KIND_HELLO => Frame::Hello {
                version: r.u16("hello.version")?,
            },
            KIND_SUBMIT => Frame::Submit {
                job_id: r.u64("submit.job_id")?,
                job: decode_job(&mut r)?,
            },
            KIND_ACCEPTED => Frame::Accepted {
                job_id: r.u64("accepted.job_id")?,
                shards: r.u32("accepted.shards")?,
                stream_len: r.u64("accepted.stream_len")?,
            },
            KIND_SNAPSHOT => Frame::Snapshot {
                job_id: r.u64("snapshot.job_id")?,
                seq: r.u64("snapshot.seq")?,
                accesses_done: r.u64("snapshot.accesses_done")?,
                stats: decode_stats(&mut r)?,
            },
            KIND_DONE => Frame::Done {
                job_id: r.u64("done.job_id")?,
                stats: decode_stats(&mut r)?,
                health: decode_health(&mut r)?,
            },
            KIND_JOB_ERROR => Frame::JobError {
                job_id: r.u64("job_error.job_id")?,
                code: ErrorCode::from_u8(r.u8("job_error.code")?).ok_or({
                    FrameError::BadValue {
                        field: "job_error.code",
                    }
                })?,
                message: r.string("job_error.message")?,
            },
            KIND_CANCEL => Frame::Cancel {
                job_id: r.u64("cancel.job_id")?,
            },
            KIND_SHUTDOWN => Frame::Shutdown {
                drain: r.bool("shutdown.drain")?,
            },
            KIND_SHUTTING_DOWN => Frame::ShuttingDown,
            kind => return Err(FrameError::UnknownKind(kind)),
        };
        r.finish()?;
        Ok(frame)
    }
}

/// Reads one length-prefixed frame from `reader` into the reusable
/// `payload` buffer and decodes it.
///
/// # Errors
///
/// [`WireError::Disconnected`] on clean EOF at a frame boundary,
/// [`WireError::Io`] for transport failures (a torn frame surfaces as
/// `UnexpectedEof`), [`WireError::Frame`] for undecodable bytes.
pub fn read_frame<R: Read>(reader: &mut R, payload: &mut Vec<u8>) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::Disconnected),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len as usize > MAX_FRAME_BYTES {
        return Err(WireError::Frame(FrameError::BadLength(len)));
    }
    payload.clear();
    payload.resize(len as usize, 0);
    reader.read_exact(payload)?;
    Ok(Frame::decode(payload)?)
}

/// Encodes `frame` into the reusable `scratch` buffer and writes it.
///
/// # Errors
///
/// [`WireError::Frame`] if the frame cannot be encoded,
/// [`WireError::Io`] if the write fails.
pub fn write_frame<W: Write>(
    writer: &mut W,
    frame: &Frame,
    scratch: &mut Vec<u8>,
) -> Result<(), WireError> {
    frame.encode_into(scratch)?;
    writer.write_all(scratch)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        frame.encode_into(&mut buf).unwrap();
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert_eq!(len, buf.len() - 4, "length prefix covers the payload");
        assert_eq!(Frame::decode(&buf[4..]).unwrap(), frame);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip(Frame::Submit {
            job_id: 7,
            job: JobSpec::trace("tests/data/gap-tiny-2k.tlbt"),
        });
        roundtrip(Frame::Submit {
            job_id: u64::MAX,
            job: {
                let mut job = JobSpec::app("galgel");
                job.scale = Scale::new(3);
                job.shards = 0;
                job.policy = DecodePolicy::quarantine(9);
                job.snapshot_every = 500;
                job.fault_panics = 2;
                job.scheme = {
                    let mut s = PrefetcherConfig::markov();
                    s.rows(512).assoc(Associativity::ways_of(4));
                    s
                };
                job
            },
        });
        roundtrip(Frame::Submit {
            job_id: 11,
            job: {
                let mut job = JobSpec::mix(["gap", "mcf", "eon"], 4096);
                job.switch_policy = SwitchPolicy::Asid {
                    contexts: 64,
                    tables: TablePolicy::Partitioned,
                };
                job
            },
        });
        roundtrip(Frame::Submit {
            job_id: 12,
            job: {
                let mut job = JobSpec::app("gap");
                job.scheme = {
                    let mut s = PrefetcherConfig::trend_stride();
                    s.window(4);
                    s
                };
                job
            },
        });
        roundtrip(Frame::Submit {
            job_id: 13,
            job: {
                let mut job = JobSpec::app("gap");
                job.scheme = {
                    let mut s = PrefetcherConfig::distance();
                    s.confidence(ConfidenceConfig::adaptive());
                    s
                };
                job
            },
        });
        roundtrip(Frame::Submit {
            job_id: 14,
            job: {
                let mut job = JobSpec::app("gap");
                job.scheme = PrefetcherConfig::ensemble_of(&[
                    PrefetcherKind::Distance,
                    PrefetcherKind::Stride,
                    PrefetcherKind::Markov,
                ]);
                job
            },
        });
        roundtrip(Frame::Accepted {
            job_id: 1,
            shards: 4,
            stream_len: 123_456,
        });
        let mut stats = SimStats {
            accesses: 1,
            misses: 2,
            prefetch_buffer_hits: 3,
            demand_walks: 4,
            prefetches_issued: 5,
            prefetches_filtered: 6,
            prefetches_evicted_unused: 7,
            maintenance_ops: 8,
            footprint_pages: 9,
            per_stream: PerStreamStats::with_streams(2),
        };
        stats.per_stream.record(
            1,
            &StreamStats {
                accesses: 10,
                misses: 11,
                prefetch_buffer_hits: 12,
                demand_walks: 13,
                prefetches_issued: 14,
                footprint_pages: 15,
            },
        );
        roundtrip(Frame::Snapshot {
            job_id: 2,
            seq: 3,
            accesses_done: 4096,
            stats: stats.clone(),
        });
        roundtrip(Frame::Done {
            job_id: 3,
            stats,
            health: RunHealth {
                retries: 1,
                degraded_shards: 2,
                quarantined_records: 3,
            },
        });
        roundtrip(Frame::JobError {
            job_id: 4,
            code: ErrorCode::QueueFull,
            message: "queue full (depth 64)".to_owned(),
        });
        roundtrip(Frame::Cancel { job_id: 5 });
        roundtrip(Frame::Shutdown { drain: true });
        roundtrip(Frame::Shutdown { drain: false });
        roundtrip(Frame::ShuttingDown);
    }

    #[test]
    fn unrepresentable_counts_fail_the_encode_instead_of_truncating() {
        let mut buf = Vec::new();
        // A mix with more members than the u16 count field can carry
        // must be a typed encode error, not a silently truncated frame.
        let apps: Vec<String> = (0..70_000).map(|i| format!("app{i}")).collect();
        let frame = Frame::Submit {
            job_id: 1,
            job: JobSpec::mix(apps, 4096),
        };
        assert_eq!(
            frame.encode_into(&mut buf),
            Err(FrameError::BadValue {
                field: "job.source.mix.count"
            })
        );
        // A string longer than its u16 length prefix likewise.
        let frame = Frame::JobError {
            job_id: 2,
            code: ErrorCode::Sim,
            message: "x".repeat(70_000),
        };
        assert_eq!(
            frame.encode_into(&mut buf),
            Err(FrameError::BadValue {
                field: "string length"
            })
        );
        // And a frame that would exceed what read_frame accepts fails
        // at encode rather than producing an unreadable stream.
        let apps: Vec<String> = (0..65_000).map(|i| format!("application-{i:08}")).collect();
        let frame = Frame::Submit {
            job_id: 3,
            job: JobSpec::mix(apps, 4096),
        };
        assert_eq!(
            frame.encode_into(&mut buf),
            Err(FrameError::BadValue {
                field: "frame length"
            })
        );
        // Failed encodes leave the buffer reusable: a good frame after a
        // bad one round-trips.
        roundtrip(Frame::Hello { version: 1 });
    }

    #[test]
    fn ensemble_component_lists_must_match_the_kind() {
        let frame = Frame::Submit {
            job_id: 1,
            job: {
                let mut job = JobSpec::app("g");
                job.scheme = PrefetcherConfig::ensemble_of(&[
                    PrefetcherKind::Distance,
                    PrefetcherKind::Stride,
                ]);
                job
            },
        };
        let mut buf = Vec::new();
        frame.encode_into(&mut buf).unwrap();
        let mut payload = buf[4..].to_vec();
        // frame kind + job id + source tag + name length + name "g".
        let kind_at = 1 + 8 + 1 + 2 + 1;
        assert_eq!(payload[kind_at], 7, "ensemble kind byte");
        // A component list on a non-ensemble scheme is non-canonical.
        payload[kind_at] = 5;
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::BadValue {
                field: "scheme.ensemble.count"
            })
        );
        // Unassigned kind tags stay typed errors.
        payload[kind_at] = 8;
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::UnknownTag {
                field: "scheme.kind",
                tag: 8
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        Frame::Hello { version: 1 }.encode_into(&mut buf).unwrap();
        let mut payload = buf[4..].to_vec();
        payload.push(0xFF);
        assert_eq!(
            Frame::decode(&payload),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn empty_and_unknown_payloads_are_typed_errors() {
        assert_eq!(
            Frame::decode(&[]),
            Err(FrameError::Truncated {
                field: "frame kind"
            })
        );
        assert_eq!(Frame::decode(&[0xEE]), Err(FrameError::UnknownKind(0xEE)));
    }

    #[test]
    fn oversize_and_zero_length_prefixes_are_rejected_before_allocation() {
        let mut payload = Vec::new();
        let huge = (u32::MAX).to_le_bytes();
        let err = read_frame(&mut huge.as_slice(), &mut payload).unwrap_err();
        assert!(matches!(
            err,
            WireError::Frame(FrameError::BadLength(u32::MAX))
        ));
        let zero = 0u32.to_le_bytes();
        let err = read_frame(&mut zero.as_slice(), &mut payload).unwrap_err();
        assert!(matches!(err, WireError::Frame(FrameError::BadLength(0))));
    }

    #[test]
    fn clean_eof_is_disconnected_and_torn_frames_are_io_errors() {
        let mut payload = Vec::new();
        let empty: &[u8] = &[];
        assert!(matches!(
            read_frame(&mut { empty }, &mut payload).unwrap_err(),
            WireError::Disconnected
        ));
        let torn: &[u8] = &[5, 0, 0, 0, KIND_HELLO];
        assert!(matches!(
            read_frame(&mut { torn }, &mut payload).unwrap_err(),
            WireError::Io(_)
        ));
    }
}
