//! # tlbsim-service — the online simulation service
//!
//! A long-running daemon that serves simulation jobs over a
//! Unix-domain socket, turning the batch simulator into an online
//! system: clients submit traces or application models with a
//! prefetching scheme, follow incremental statistics snapshots, and
//! receive a final result **bit-identical** to the equivalent batch
//! `run_app` / `run_app_sharded` call (the service differential tests
//! pin this end to end).
//!
//! Three layers, std-only (`std::os::unix::net`, no network or
//! serialization dependencies):
//!
//! * `wire` — a length-prefixed, versioned binary frame protocol
//!   ([`Frame`]); decoding is total (typed [`FrameError`]s, never a
//!   panic), and encoding into a reusable scratch buffer keeps the
//!   steady-state path allocation-free. `docs/PROTOCOL.md` is the
//!   normative byte-level spec.
//! * `job` — [`JobSpec`] (what to run) → [`resolve`] (validate
//!   early: open + scan the trace under its [`DecodePolicy`], prove
//!   the geometry constructible, finalise auto shards) → [`execute`]
//!   (checkpointed sequential engine with snapshot publishing and
//!   cancellation, or the self-healing sharded executor). Failures are
//!   typed [`ErrorCode`]s carried in `JobError` frames.
//! * `server`/`client` — the daemon ([`Server`]: accept loop,
//!   bounded run queue with queue-full backpressure, worker pool with
//!   panic containment, graceful drain/stop shutdown) and the client
//!   library ([`Client`]: handshake, submit, follow, cancel,
//!   shutdown).
//!
//! Fault tolerance carries over from the sharded executor wholesale: a
//! panicking job is retried, then degraded, then reported as a typed
//! per-job error — the daemon keeps serving. Disconnected clients
//! cancel their own jobs; garbage on a socket drops that client only.
//!
//! [`DecodePolicy`]: tlbsim_trace::DecodePolicy

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod client;
mod job;
mod server;
mod wire;

pub use client::{Client, JobOutcome, ServiceError, SnapshotEvent};
pub use job::{execute, resolve, ErrorCode, JobFailure, JobSource, JobSpec, ResolvedJob};
pub use server::{Server, ServerConfig};
pub use wire::{
    read_frame, write_frame, Frame, FrameError, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
