//! The client side: connect, submit, follow a job to its result.
//!
//! [`Client`] wraps one connection with the handshake done and the
//! frame codec's scratch buffers owned, exposing both a high-level
//! driver ([`Client::run_job`]: submit → snapshots → final result) and
//! the raw frame stream ([`Client::next_frame`]) for callers that
//! multiplex several jobs over one connection.

use std::os::unix::net::UnixStream;
use std::path::Path;

use tlbsim_sim::{RunHealth, SimStats};

use crate::job::{ErrorCode, JobSpec};
use crate::wire::{read_frame, write_frame, Frame, WireError, PROTOCOL_VERSION};

/// A client-visible service failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Connecting or talking to the socket failed.
    Io(std::io::Error),
    /// The byte stream violated the frame protocol.
    Wire(WireError),
    /// The daemon speaks a different protocol version.
    VersionMismatch {
        /// The version the daemon announced.
        server: u16,
    },
    /// The daemon rejected or failed the job (typed, with diagnosis).
    Job {
        /// Failure class.
        code: ErrorCode,
        /// One-line diagnosis from the daemon.
        message: String,
    },
    /// The daemon sent a frame that makes no sense at this point in
    /// the exchange.
    UnexpectedFrame {
        /// What arrived, summarised.
        got: &'static str,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service i/o: {e}"),
            ServiceError::Wire(e) => write!(f, "service protocol: {e}"),
            ServiceError::VersionMismatch { server } => write!(
                f,
                "daemon speaks protocol v{server}, this client speaks v{PROTOCOL_VERSION}"
            ),
            ServiceError::Job { code, message } => write!(f, "job failed ({code}): {message}"),
            ServiceError::UnexpectedFrame { got } => {
                write!(f, "unexpected frame from daemon: {got}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

/// One incremental checkpoint observed while a job ran.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEvent {
    /// Checkpoint sequence number (restarts from 1 after a retried
    /// panic — a fresh run of the same stream).
    pub seq: u64,
    /// Accesses simulated so far.
    pub accesses_done: u64,
    /// Cumulative statistics at this point.
    pub stats: SimStats,
}

/// Everything a completed job produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Final statistics — bit-identical to the equivalent batch run.
    pub stats: SimStats,
    /// What recovery the run needed (all-zero on the happy path).
    pub health: RunHealth,
    /// Incremental checkpoints, in arrival order (empty unless the job
    /// set a snapshot cadence).
    pub snapshots: Vec<SnapshotEvent>,
    /// Worker shards the daemon actually used.
    pub shards: u32,
    /// Accesses the daemon simulated.
    pub stream_len: u64,
}

/// A connected, handshaken client.
///
/// The embedded scratch buffers are reused across frames, so a
/// long-lived client's steady-state send/receive path does not
/// allocate. [`Client::run_job`] drives one job at a time; interleave
/// jobs by hand with [`Client::submit`] + [`Client::next_frame`] if
/// you need more.
pub struct Client {
    stream: UnixStream,
    scratch: Vec<u8>,
    payload: Vec<u8>,
}

impl Client {
    /// Connects to a daemon at `path` and performs the version
    /// handshake.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] if connecting fails,
    /// [`ServiceError::VersionMismatch`] if the daemon speaks another
    /// protocol version, [`ServiceError::Wire`] on a malformed reply.
    pub fn connect(path: impl AsRef<Path>) -> Result<Self, ServiceError> {
        let stream = UnixStream::connect(path)?;
        let mut client = Client {
            stream,
            scratch: Vec::with_capacity(1024),
            payload: Vec::with_capacity(1024),
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.next_frame()? {
            Frame::Hello {
                version: PROTOCOL_VERSION,
            } => Ok(client),
            Frame::Hello { version } => Err(ServiceError::VersionMismatch { server: version }),
            _ => Err(ServiceError::UnexpectedFrame {
                got: "non-Hello during handshake",
            }),
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), ServiceError> {
        write_frame(&mut self.stream, frame, &mut self.scratch)?;
        Ok(())
    }

    /// Sends a raw frame without waiting for any reply — the low-level
    /// escape hatch for callers that interleave frames by hand (e.g. a
    /// shutdown racing in-flight jobs); [`Client::run_job`] and friends
    /// cover the common paths.
    ///
    /// # Errors
    ///
    /// Transport or encoding failures.
    pub fn send_frame(&mut self, frame: &Frame) -> Result<(), ServiceError> {
        self.send(frame)
    }

    /// Reads the next frame from the daemon (blocking).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Wire`] for transport or protocol failures
    /// (including disconnect).
    pub fn next_frame(&mut self) -> Result<Frame, ServiceError> {
        Ok(read_frame(&mut self.stream, &mut self.payload)?)
    }

    /// Submits a job and waits for admission.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] if the daemon rejected it (bad spec,
    /// queue full, shutting down); transport errors as usual.
    pub fn submit(&mut self, job_id: u64, job: &JobSpec) -> Result<(u32, u64), ServiceError> {
        self.send(&Frame::Submit {
            job_id,
            job: job.clone(),
        })?;
        match self.next_frame()? {
            Frame::Accepted {
                job_id: id,
                shards,
                stream_len,
            } if id == job_id => Ok((shards, stream_len)),
            Frame::JobError {
                job_id: id,
                code,
                message,
            } if id == job_id => Err(ServiceError::Job { code, message }),
            _ => Err(ServiceError::UnexpectedFrame {
                got: "neither Accepted nor JobError after Submit",
            }),
        }
    }

    /// Submits a job and follows it to completion, collecting
    /// snapshots along the way.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Job`] carrying the daemon's typed failure if
    /// the job was rejected or failed; transport errors as usual.
    pub fn run_job(&mut self, job_id: u64, job: &JobSpec) -> Result<JobOutcome, ServiceError> {
        let (shards, stream_len) = self.submit(job_id, job)?;
        let mut snapshots = Vec::new();
        loop {
            match self.next_frame()? {
                Frame::Snapshot {
                    job_id: id,
                    seq,
                    accesses_done,
                    stats,
                } if id == job_id => {
                    // A retried attempt restarts the sequence; discard
                    // the abandoned attempt's checkpoints.
                    if seq == 1 {
                        snapshots.clear();
                    }
                    snapshots.push(SnapshotEvent {
                        seq,
                        accesses_done,
                        stats,
                    });
                }
                Frame::Done {
                    job_id: id,
                    stats,
                    health,
                } if id == job_id => {
                    return Ok(JobOutcome {
                        stats,
                        health,
                        snapshots,
                        shards,
                        stream_len,
                    });
                }
                Frame::JobError {
                    job_id: id,
                    code,
                    message,
                } if id == job_id => return Err(ServiceError::Job { code, message }),
                _ => {
                    return Err(ServiceError::UnexpectedFrame {
                        got: "frame for a different job while following one job",
                    })
                }
            }
        }
    }

    /// Asks the daemon to stop `job_id` at its next checkpoint. The
    /// job's terminal frame (a `cancelled` `JobError`, or `Done` if it
    /// finished first) still arrives on this connection.
    ///
    /// # Errors
    ///
    /// Transport errors only; cancelling an unknown job is a no-op.
    pub fn cancel(&mut self, job_id: u64) -> Result<(), ServiceError> {
        self.send(&Frame::Cancel { job_id })
    }

    /// Asks the daemon to shut down and waits for the acknowledgement.
    /// `drain = true` finishes queued jobs first; `false` fails them.
    ///
    /// # Errors
    ///
    /// Transport errors, or [`ServiceError::UnexpectedFrame`] if the
    /// acknowledgement is interleaved wrong (shut down from a
    /// connection with no jobs in flight).
    pub fn shutdown(&mut self, drain: bool) -> Result<(), ServiceError> {
        self.send(&Frame::Shutdown { drain })?;
        match self.next_frame()? {
            Frame::ShuttingDown => Ok(()),
            _ => Err(ServiceError::UnexpectedFrame {
                got: "non-ShuttingDown after Shutdown",
            }),
        }
    }
}
