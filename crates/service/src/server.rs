//! The daemon: a Unix-socket server multiplexing simulation jobs onto
//! a bounded worker pool.
//!
//! One [`Server`] owns a listening socket. [`Server::run`] blocks,
//! serving until a client sends `Shutdown`:
//!
//! * an **accept loop** (the calling thread) hands each connection to a
//!   reader thread;
//! * **reader threads** speak the frame protocol: handshake, then
//!   `Submit`/`Cancel`/`Shutdown`. Jobs are resolved *at submit* — a
//!   bad path, unknown app, or invalid geometry fails the submit with a
//!   typed `JobError` instead of poisoning a worker — and admitted to a
//!   bounded queue (`JobError`/`queue-full` past the depth: explicit
//!   backpressure, never unbounded memory);
//! * **worker threads** pop jobs and run them on warm engines,
//!   streaming `Snapshot` frames at the job's cadence and finishing
//!   with `Done` or a typed `JobError`. A panicking job is contained by
//!   the executor's retry→degrade→report escalation; the worker and
//!   the daemon outlive it.
//!
//! Fault containment extends to clients: a disconnected client marks
//! its connection dead and cancels its jobs (queued ones are skipped,
//! running ones stop at their next checkpoint); a client that writes
//! garbage is dropped at the first unparseable frame. Either way the
//! daemon keeps serving everyone else.

use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::job::{self, ErrorCode, ResolvedJob};
use crate::wire::{write_frame, Frame, MAX_FRAME_BYTES, PROTOCOL_VERSION};

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPING: u8 = 2;

/// How often blocked reads and waits re-check daemon state. Bounds
/// shutdown latency; no protocol traffic happens at this cadence.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// a fault-tolerant daemon treats poisoning as survivable, not fatal.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Daemon sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing jobs; `0` means one per available CPU.
    pub workers: usize,
    /// Run-queue depth; submits past this fail with
    /// [`ErrorCode::QueueFull`] (bounded backpressure).
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue_depth: 64,
        }
    }
}

/// One client connection's server-side state, shared between its
/// reader thread and every worker running its jobs.
struct Connection {
    /// The write half plus its reusable encode buffer: one lock, so
    /// frames from concurrent workers never interleave and steady-state
    /// sends don't allocate.
    writer: Mutex<(UnixStream, Vec<u8>)>,
    /// Cleared when the client disconnects or violates the protocol;
    /// dead connections drop sends silently and skip queued jobs.
    alive: AtomicBool,
    /// Jobs accepted but not yet finished, gating reader-thread exit
    /// during shutdown.
    pending: AtomicU64,
    /// Cancellation flags for this connection's accepted jobs.
    cancels: Mutex<HashMap<u64, Arc<AtomicBool>>>,
}

impl Connection {
    fn new(stream: UnixStream) -> Self {
        Connection {
            writer: Mutex::new((stream, Vec::with_capacity(1024))),
            alive: AtomicBool::new(true),
            pending: AtomicU64::new(0),
            cancels: Mutex::new(HashMap::new()),
        }
    }

    /// Sends a frame; a failed write (or an already-dead connection)
    /// marks the connection dead and cancels its jobs rather than
    /// erroring — per-client output failure must not take a worker
    /// down.
    fn send(&self, frame: &Frame) {
        if !self.alive.load(Ordering::SeqCst) {
            return;
        }
        let failed = {
            let mut guard = lock(&self.writer);
            let (stream, scratch) = &mut *guard;
            write_frame(stream, frame, scratch).is_err()
        };
        if failed {
            self.abandon();
        }
    }

    /// Marks the connection dead and cancels all of its jobs.
    fn abandon(&self) {
        self.alive.store(false, Ordering::SeqCst);
        for flag in lock(&self.cancels).values() {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Releases a finished (or skipped) job's bookkeeping.
    fn finish_job(&self, job_id: u64) {
        lock(&self.cancels).remove(&job_id);
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A resolved job waiting for a worker.
struct QueuedJob {
    job_id: u64,
    resolved: ResolvedJob,
    cancel: Arc<AtomicBool>,
    conn: Arc<Connection>,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    state: AtomicU8,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    queue_depth: usize,
}

/// The simulation daemon: binds a Unix socket, then serves submitted
/// jobs until told to shut down.
///
/// # Examples
///
/// Serving and driving a job in-process (the e2e tests run exactly
/// this shape against real traces):
///
/// ```no_run
/// use tlbsim_service::{Client, JobSpec, Server, ServerConfig};
///
/// let path = std::env::temp_dir().join("tlbsim.sock");
/// let server = Server::bind(&path, ServerConfig::default())?;
/// let daemon = std::thread::spawn(move || server.run());
///
/// let mut client = Client::connect(&path)?;
/// let outcome = client.run_job(1, &JobSpec::app("gap"))?;
/// assert!(outcome.stats.accesses > 0);
/// client.shutdown(true)?;
/// daemon.join().expect("daemon thread").expect("clean exit");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    config: ServerConfig,
}

impl Server {
    /// Binds the daemon socket at `path`, replacing a stale socket
    /// file left by a previous run.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding the listener.
    pub fn bind(path: impl AsRef<Path>, config: ServerConfig) -> std::io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        // A crashed daemon leaves its socket file behind; binding over
        // it requires removing it first.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            listener,
            path,
            config,
        })
    }

    /// The socket path clients connect to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serves until a client sends `Shutdown`, then returns once every
    /// in-flight (and, when draining, queued) job has finished and all
    /// connections are closed. The socket file is removed on exit.
    ///
    /// # Errors
    ///
    /// This implementation always returns `Ok(())`; the `Result` is
    /// the API contract for future fatal conditions.
    pub fn run(&self) -> std::io::Result<()> {
        let shared = Shared {
            state: AtomicU8::new(STATE_RUNNING),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queue_depth: self.config.queue_depth,
        };
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.workers
        };

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| worker_loop(&shared));
            }
            for stream in self.listener.incoming() {
                if shared.state.load(Ordering::SeqCst) != STATE_RUNNING {
                    break;
                }
                if let Ok(stream) = stream {
                    scope.spawn(|| serve_connection(stream, &shared, &self.path));
                }
            }
        });
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

/// Worker: pop → run → report, until shutdown empties the world.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.state.load(Ordering::SeqCst) != STATE_RUNNING {
                    break None;
                }
                queue = match shared.available.wait_timeout(queue, POLL_INTERVAL) {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        let Some(job) = job else { return };
        run_one(shared, job);
    }
}

fn run_one(shared: &Shared, job: QueuedJob) {
    let QueuedJob {
        job_id,
        resolved,
        cancel,
        conn,
    } = job;
    // Jobs that raced a non-draining shutdown into the queue are
    // failed, not run.
    if shared.state.load(Ordering::SeqCst) == STATE_STOPPING {
        conn.send(&Frame::JobError {
            job_id,
            code: ErrorCode::ShuttingDown,
            message: "daemon stopping without drain".to_owned(),
        });
        conn.finish_job(job_id);
        return;
    }
    // Nobody is listening for a dead connection's results.
    if !conn.alive.load(Ordering::SeqCst) {
        conn.finish_job(job_id);
        return;
    }
    let result = job::execute(&resolved, &cancel, |seq, accesses_done, stats| {
        conn.send(&Frame::Snapshot {
            job_id,
            seq,
            accesses_done,
            stats: stats.clone(),
        });
    });
    match result {
        Ok((stats, health)) => conn.send(&Frame::Done {
            job_id,
            stats,
            health,
        }),
        Err((code, message)) => conn.send(&Frame::JobError {
            job_id,
            code,
            message,
        }),
    }
    conn.finish_job(job_id);
}

/// Reader thread: handshake, then serve this client's frames until it
/// disconnects, misbehaves, or the daemon finishes shutting down.
fn serve_connection(stream: UnixStream, shared: &Shared, socket_path: &Path) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(Connection::new(stream));
    read_loop(reader, &conn, shared, socket_path);
    conn.abandon();
}

fn read_loop(mut reader: UnixStream, conn: &Arc<Connection>, shared: &Shared, socket_path: &Path) {
    if reader.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut payload: Vec<u8> = Vec::new();
    let mut header = [0u8; 4];
    let mut header_filled = 0usize;
    let mut greeted = false;
    loop {
        // Shutdown exit: once the daemon is leaving and this client has
        // no unfinished jobs, close the connection so `run` can join.
        if shared.state.load(Ordering::SeqCst) != STATE_RUNNING
            && conn.pending.load(Ordering::SeqCst) == 0
        {
            return;
        }
        // Accumulate the 4-byte length prefix across poll ticks.
        if header_filled < header.len() {
            match reader.read(&mut header[header_filled..]) {
                Ok(0) => return, // peer closed (caller cancels jobs)
                Ok(n) => {
                    header_filled += n;
                    continue;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
        header_filled = 0;
        let len = u32::from_le_bytes(header) as usize;
        if len == 0 || len > MAX_FRAME_BYTES {
            return; // unframeable garbage: drop the client, keep serving
        }
        // The payload follows its header immediately, so read it
        // without the poll timeout (a torn read here is a dead peer).
        payload.clear();
        payload.resize(len, 0);
        let _ = reader.set_read_timeout(None);
        let read_ok = reader.read_exact(&mut payload).is_ok();
        let _ = reader.set_read_timeout(Some(POLL_INTERVAL));
        if !read_ok {
            return;
        }
        let Ok(frame) = Frame::decode(&payload) else {
            return; // undecodable frame: protocol violation, drop client
        };
        if !greeted {
            match frame {
                Frame::Hello {
                    version: PROTOCOL_VERSION,
                } => {
                    conn.send(&Frame::Hello {
                        version: PROTOCOL_VERSION,
                    });
                    greeted = true;
                    continue;
                }
                _ => {
                    // Version mismatch (or no handshake at all): state
                    // our version so the client can report it, then
                    // hang up.
                    conn.send(&Frame::Hello {
                        version: PROTOCOL_VERSION,
                    });
                    return;
                }
            }
        }
        if !handle_frame(frame, conn, shared, socket_path) {
            return;
        }
    }
}

/// Applies one client frame; `false` drops the connection.
fn handle_frame(frame: Frame, conn: &Arc<Connection>, shared: &Shared, socket_path: &Path) -> bool {
    match frame {
        Frame::Submit { job_id, job } => {
            if shared.state.load(Ordering::SeqCst) != STATE_RUNNING {
                conn.send(&Frame::JobError {
                    job_id,
                    code: ErrorCode::ShuttingDown,
                    message: "daemon is shutting down".to_owned(),
                });
                return true;
            }
            match job::resolve(&job) {
                Err((code, message)) => conn.send(&Frame::JobError {
                    job_id,
                    code,
                    message,
                }),
                Ok(resolved) => {
                    let accepted = Frame::Accepted {
                        job_id,
                        shards: resolved.shards as u32,
                        stream_len: resolved.stream_len,
                    };
                    let mut queue = lock(&shared.queue);
                    if queue.len() >= shared.queue_depth {
                        drop(queue);
                        conn.send(&Frame::JobError {
                            job_id,
                            code: ErrorCode::QueueFull,
                            message: format!("run queue full (depth {})", shared.queue_depth),
                        });
                    } else {
                        let cancel = Arc::new(AtomicBool::new(false));
                        lock(&conn.cancels).insert(job_id, Arc::clone(&cancel));
                        conn.pending.fetch_add(1, Ordering::SeqCst);
                        // Accepted must hit the wire before the job
                        // becomes poppable, or a fast worker could put
                        // the job's terminal frame ahead of it.
                        conn.send(&accepted);
                        queue.push_back(QueuedJob {
                            job_id,
                            resolved,
                            cancel,
                            conn: Arc::clone(conn),
                        });
                        drop(queue);
                        shared.available.notify_one();
                    }
                }
            }
            true
        }
        Frame::Cancel { job_id } => {
            if let Some(flag) = lock(&conn.cancels).get(&job_id) {
                flag.store(true, Ordering::SeqCst);
            }
            true
        }
        Frame::Shutdown { drain } => {
            let next = if drain {
                STATE_DRAINING
            } else {
                STATE_STOPPING
            };
            shared.state.store(next, Ordering::SeqCst);
            if !drain {
                // Fail everything still queued; in-flight jobs finish.
                let dropped: Vec<QueuedJob> = lock(&shared.queue).drain(..).collect();
                for job in dropped {
                    job.conn.send(&Frame::JobError {
                        job_id: job.job_id,
                        code: ErrorCode::ShuttingDown,
                        message: "daemon stopping without drain".to_owned(),
                    });
                    job.conn.finish_job(job.job_id);
                }
            }
            shared.available.notify_all();
            conn.send(&Frame::ShuttingDown);
            // The accept loop blocks in accept(); a self-connection
            // wakes it so it can observe the state change and exit.
            let _ = UnixStream::connect(socket_path);
            true
        }
        // Server-bound streams never carry server→client frames;
        // receiving one is a protocol violation.
        Frame::Hello { .. }
        | Frame::Accepted { .. }
        | Frame::Snapshot { .. }
        | Frame::Done { .. }
        | Frame::JobError { .. }
        | Frame::ShuttingDown => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_auto_workers_bounded_queue() {
        let config = ServerConfig::default();
        assert_eq!(config.workers, 0);
        assert!(config.queue_depth > 0);
    }

    #[test]
    fn bind_replaces_a_stale_socket_file() {
        let path = std::env::temp_dir().join(format!("tlbsim-stale-{}.sock", std::process::id()));
        std::fs::write(&path, b"stale").unwrap();
        let server = Server::bind(&path, ServerConfig::default()).unwrap();
        assert_eq!(server.path(), path.as_path());
        drop(server);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dead_connections_swallow_sends_and_cancel_jobs() {
        let path = std::env::temp_dir().join(format!("tlbsim-dead-{}.sock", std::process::id()));
        let _listener = UnixListener::bind(&path).unwrap();
        let stream = UnixStream::connect(&path).unwrap();
        let conn = Connection::new(stream);
        let flag = Arc::new(AtomicBool::new(false));
        lock(&conn.cancels).insert(7, Arc::clone(&flag));
        conn.abandon();
        assert!(flag.load(Ordering::SeqCst), "abandon cancels jobs");
        conn.send(&Frame::ShuttingDown); // must be a silent no-op
        assert!(!conn.alive.load(Ordering::SeqCst));
        let _ = std::fs::remove_file(&path);
    }
}
