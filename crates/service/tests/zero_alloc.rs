//! The allocation discipline of the service's steady-state frame path.
//!
//! The daemon's hot loop — encode a `Snapshot`/`Done` frame into the
//! connection's scratch buffer, and decode incoming frames into a
//! reusable payload buffer — must stay off the heap once buffers have
//! reached their high-water capacity, matching the engine's own
//! steady-state discipline. A counting global allocator pins it.
//!
//! One carve-out, pinned exactly: a decoded frame whose statistics carry
//! per-stream rows materialises those rows into the returned `SimStats`
//! (its `PerStreamStats` is `Vec`-backed since ASIDs widened the stream
//! axis to 1024), which is one heap allocation per such frame. Encoding
//! per-stream rows is still allocation-free, and so is ingesting
//! aggregate-only frames.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use tlbsim_service::{read_frame, Frame};
use tlbsim_sim::{PerStreamStats, RunHealth, SimStats, StreamStats};

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates directly to `System`; the only addition is a
// non-allocating thread-local counter bump.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|count| count.set(count.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_so_far() -> u64 {
    ALLOCATIONS.with(|count| count.get())
}

fn busy_stats(seed: u64) -> SimStats {
    let mut per_stream = PerStreamStats::with_streams(4);
    for index in 0..4 {
        per_stream.record(
            index,
            &StreamStats {
                accesses: seed + index as u64,
                misses: seed / 2,
                prefetch_buffer_hits: seed / 3,
                demand_walks: seed / 4,
                prefetches_issued: seed / 5,
                footprint_pages: seed / 6,
            },
        );
    }
    SimStats {
        accesses: seed,
        misses: seed / 2,
        prefetch_buffer_hits: seed / 3,
        demand_walks: seed / 4,
        prefetches_issued: seed / 5,
        prefetches_filtered: seed / 6,
        prefetches_evicted_unused: seed / 7,
        maintenance_ops: seed / 8,
        footprint_pages: seed / 9,
        per_stream,
    }
}

/// Aggregate-only statistics: no per-stream rows, so neither encoding
/// nor decoding touches the heap.
fn aggregate_stats(seed: u64) -> SimStats {
    SimStats {
        per_stream: PerStreamStats::default(),
        ..busy_stats(seed)
    }
}

#[test]
fn steady_state_snapshot_publishing_never_allocates() {
    let mut scratch: Vec<u8> = Vec::new();

    // Build every frame up front: constructing a `SimStats` with
    // per-stream rows allocates its row vector, and that construction
    // belongs to the simulation side, not the publishing path under
    // test.
    let frames: Vec<Frame> = (2..2002u64)
        .map(|seq| Frame::Snapshot {
            job_id: 1,
            seq,
            accesses_done: seq * 1000,
            stats: busy_stats(seq),
        })
        .collect();
    let done = Frame::Done {
        job_id: 1,
        stats: busy_stats(9999),
        health: RunHealth {
            retries: 0,
            degraded_shards: 0,
            quarantined_records: 0,
        },
    };

    // Warm-up: the first encode sizes the scratch buffer.
    Frame::Snapshot {
        job_id: 1,
        seq: 1,
        accesses_done: 1000,
        stats: busy_stats(1),
    }
    .encode_into(&mut scratch)
    .expect("snapshot encodes");

    let before = allocations_so_far();
    for frame in &frames {
        frame.encode_into(&mut scratch).expect("snapshot encodes");
    }
    done.encode_into(&mut scratch).expect("done encodes");
    let allocated = allocations_so_far() - before;
    assert_eq!(
        allocated, 0,
        "steady-state snapshot encoding performed {allocated} heap allocations"
    );
}

#[test]
fn steady_state_frame_ingest_never_allocates() {
    // Pre-build a stream of 500 aggregate-only snapshot frames.
    let mut stream: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    for seq in 1..=500u64 {
        let frame = Frame::Snapshot {
            job_id: 7,
            seq,
            accesses_done: seq * 4096,
            stats: aggregate_stats(seq),
        };
        frame.encode_into(&mut scratch).expect("snapshot encodes");
        stream.extend_from_slice(&scratch);
    }

    // Warm-up pass sizes the payload buffer.
    let mut payload: Vec<u8> = Vec::new();
    let mut reader = stream.as_slice();
    while let Ok(frame) = read_frame(&mut reader, &mut payload) {
        assert!(matches!(frame, Frame::Snapshot { job_id: 7, .. }));
    }

    // Steady state: re-read the whole stream with warm buffers.
    let mut reader = stream.as_slice();
    let before = allocations_so_far();
    let mut frames = 0u64;
    while let Ok(frame) = read_frame(&mut reader, &mut payload) {
        assert!(matches!(frame, Frame::Snapshot { job_id: 7, .. }));
        frames += 1;
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(frames, 500);
    assert_eq!(
        allocated, 0,
        "steady-state frame ingest performed {allocated} heap allocations"
    );
}

#[test]
fn per_stream_ingest_allocates_exactly_one_row_vector_per_frame() {
    // Frames carrying per-stream rows: decoding must materialise the
    // rows into the returned `SimStats`, which is exactly one `Vec`
    // allocation per frame — no more (no reallocation, no per-row
    // boxing), pinned so a regression in either direction is loud.
    let mut stream: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    for seq in 1..=500u64 {
        let frame = Frame::Snapshot {
            job_id: 7,
            seq,
            accesses_done: seq * 4096,
            stats: busy_stats(seq),
        };
        frame.encode_into(&mut scratch).expect("snapshot encodes");
        stream.extend_from_slice(&scratch);
    }

    let mut payload: Vec<u8> = Vec::new();
    let mut reader = stream.as_slice();
    while let Ok(_frame) = read_frame(&mut reader, &mut payload) {}

    let mut reader = stream.as_slice();
    let before = allocations_so_far();
    let mut frames = 0u64;
    while let Ok(frame) = read_frame(&mut reader, &mut payload) {
        match frame {
            Frame::Snapshot {
                job_id: 7, stats, ..
            } => {
                assert_eq!(stats.per_stream.streams().len(), 4);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        frames += 1;
    }
    let allocated = allocations_so_far() - before;
    assert_eq!(frames, 500);
    assert_eq!(
        allocated, frames,
        "per-stream frame ingest should allocate exactly one row vector per frame, \
         measured {allocated} over {frames} frames"
    );
}
