//! Property tests over the wire protocol: every frame kind round-trips
//! bit-exactly through the codec, and decoding is *total* — arbitrary
//! garbage, truncated prefixes, and corrupted kind bytes all surface as
//! typed [`FrameError`]s, never panics and never silently-wrong values.

use proptest::prelude::*;
use tlbsim_core::{Associativity, ConfidenceConfig, PrefetcherConfig, PrefetcherKind};
use tlbsim_service::{read_frame, ErrorCode, Frame, JobSpec, WireError, PROTOCOL_VERSION};
use tlbsim_sim::{PerStreamStats, RunHealth, SimStats, StreamStats, SwitchPolicy, TablePolicy};
use tlbsim_trace::DecodePolicy;
use tlbsim_workloads::Scale;

fn arb_stats() -> impl Strategy<Value = SimStats> {
    (
        prop::collection::vec(any::<u64>(), 9),
        prop::collection::vec(prop::collection::vec(any::<u64>(), 6), 0..8),
    )
        .prop_map(|(counters, streams)| {
            let mut per_stream = PerStreamStats::default();
            if !streams.is_empty() {
                per_stream = PerStreamStats::with_streams(streams.len());
                for (index, s) in streams.iter().enumerate() {
                    per_stream.record(
                        index,
                        &StreamStats {
                            accesses: s[0],
                            misses: s[1],
                            prefetch_buffer_hits: s[2],
                            demand_walks: s[3],
                            prefetches_issued: s[4],
                            footprint_pages: s[5],
                        },
                    );
                }
            }
            SimStats {
                accesses: counters[0],
                misses: counters[1],
                prefetch_buffer_hits: counters[2],
                demand_walks: counters[3],
                prefetches_issued: counters[4],
                prefetches_filtered: counters[5],
                prefetches_evicted_unused: counters[6],
                maintenance_ops: counters[7],
                footprint_pages: counters[8],
                per_stream,
            }
        })
}

fn arb_health() -> impl Strategy<Value = RunHealth> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(retries, degraded, quarantined)| {
        RunHealth {
            retries,
            degraded_shards: degraded,
            quarantined_records: quarantined,
        }
    })
}

fn arb_scheme() -> impl Strategy<Value = PrefetcherConfig> {
    (
        0u8..8,
        1u32..5000,
        1u32..16,
        0u8..3,
        (0u8..2, 0u8..2, 0u8..2),
    )
        .prop_map(|(kind, rows, slots, assoc, (pc, pair, throttled))| {
            let kind = match kind {
                0 => PrefetcherKind::None,
                1 => PrefetcherKind::Sequential,
                2 => PrefetcherKind::Stride,
                3 => PrefetcherKind::Markov,
                4 => PrefetcherKind::Recency,
                5 => PrefetcherKind::Distance,
                6 => PrefetcherKind::TrendStride,
                _ => PrefetcherKind::Ensemble,
            };
            let assoc = match assoc {
                0 => Associativity::Direct,
                1 => Associativity::Full,
                _ => Associativity::ways_of(1 + (rows % 8) as usize),
            };
            let mut scheme = if kind == PrefetcherKind::Ensemble {
                // Derive a 1–3 component duel from the other draws; the
                // codec carries any base-kind list, validity is build's
                // concern.
                let bases = [
                    PrefetcherKind::Sequential,
                    PrefetcherKind::Stride,
                    PrefetcherKind::Markov,
                    PrefetcherKind::Recency,
                    PrefetcherKind::Distance,
                ];
                let count = 1 + (rows as usize % 3);
                let start = slots as usize % bases.len();
                let components: Vec<PrefetcherKind> = (0..count)
                    .map(|i| bases[(start + i) % bases.len()])
                    .collect();
                PrefetcherConfig::ensemble_of(&components)
            } else {
                PrefetcherConfig::new(kind)
            };
            scheme
                .rows(rows as usize)
                .slots(slots as usize)
                .assoc(assoc)
                .pc_qualified(pc == 1)
                .pair_indexed(pair == 1)
                .window(2 + (rows as usize % 15));
            if throttled == 1 {
                scheme.confidence(ConfidenceConfig {
                    threshold: (rows % 4) as u8,
                    max_degree: slots % 9,
                });
            }
            scheme
        })
}

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..60)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ascii"))
}

fn arb_switch_policy() -> impl Strategy<Value = SwitchPolicy> {
    prop_oneof![
        Just(SwitchPolicy::None),
        Just(SwitchPolicy::FlushOnSwitch),
        (any::<u16>(), prop::bool::ANY).prop_map(|(contexts, partitioned)| SwitchPolicy::Asid {
            contexts: contexts as usize,
            tables: if partitioned {
                TablePolicy::Partitioned
            } else {
                TablePolicy::Shared
            },
        }),
    ]
}

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        (
            arb_string(),
            0u8..3,
            prop::collection::vec(arb_string(), 1..5),
        ),
        arb_scheme(),
        (1u32..20, any::<u32>()),
        (0u8..2, any::<u64>()),
        (any::<u64>(), any::<u64>()),
        (1u64..100_000, arb_switch_policy()),
    )
        .prop_map(
            |(
                (name, source, members),
                scheme,
                (scale, shards),
                (policy, budget),
                (every, panics),
                (quantum, switch_policy),
            )| {
                let mut job = match source {
                    0 => JobSpec::trace(name),
                    1 => JobSpec::app(name),
                    _ => JobSpec::mix(members, quantum),
                };
                job.scheme = scheme;
                job.scale = Scale::new(scale);
                job.shards = shards;
                job.policy = if policy == 0 {
                    DecodePolicy::Strict
                } else {
                    DecodePolicy::quarantine(budget)
                };
                job.snapshot_every = every;
                job.fault_panics = panics;
                job.switch_policy = switch_policy;
                job
            },
        )
}

fn arb_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..7).prop_map(|tag| ErrorCode::from_u8(tag).expect("assigned tag"))
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u16>().prop_map(|version| Frame::Hello { version }),
        (any::<u64>(), arb_job()).prop_map(|(job_id, job)| Frame::Submit { job_id, job }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(job_id, shards, stream_len)| {
            Frame::Accepted {
                job_id,
                shards,
                stream_len,
            }
        }),
        ((any::<u64>(), any::<u64>(), any::<u64>()), arb_stats()).prop_map(
            |((job_id, seq, accesses_done), stats)| Frame::Snapshot {
                job_id,
                seq,
                accesses_done,
                stats,
            }
        ),
        (any::<u64>(), arb_stats(), arb_health()).prop_map(|(job_id, stats, health)| {
            Frame::Done {
                job_id,
                stats,
                health,
            }
        }),
        (any::<u64>(), arb_code(), arb_string()).prop_map(|(job_id, code, message)| {
            Frame::JobError {
                job_id,
                code,
                message,
            }
        }),
        any::<u64>().prop_map(|job_id| Frame::Cancel { job_id }),
        prop::bool::ANY.prop_map(|drain| Frame::Shutdown { drain }),
        Just(Frame::ShuttingDown),
    ]
}

fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    frame.encode_into(&mut buf).expect("encodable test frame");
    buf
}

proptest! {
    #[test]
    fn every_frame_roundtrips_bit_exactly(frame in arb_frame()) {
        let buf = encode(&frame);
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        prop_assert_eq!(len, buf.len() - 4);
        prop_assert_eq!(Frame::decode(&buf[4..]), Ok(frame));
    }

    #[test]
    fn garbage_payloads_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Totality: any byte soup is either a frame or a typed error.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn truncated_frames_are_typed_errors_never_values(frame in arb_frame()) {
        let buf = encode(&frame);
        let payload = &buf[4..];
        for cut in 0..payload.len() {
            prop_assert!(
                Frame::decode(&payload[..cut]).is_err(),
                "a strict prefix (len {cut}) must not decode"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(frame in arb_frame(), extra in 1usize..8) {
        let mut payload = encode(&frame)[4..].to_vec();
        payload.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(Frame::decode(&payload).is_err());
    }

    #[test]
    fn corrupt_kind_bytes_never_yield_the_original(frame in arb_frame(), kind in any::<u8>()) {
        let mut payload = encode(&frame)[4..].to_vec();
        if payload[0] != kind {
            payload[0] = kind;
            // Another kind may parse the bytes, but never into the
            // original frame — kinds are not aliases.
            if let Ok(decoded) = Frame::decode(&payload) {
                prop_assert_ne!(decoded, frame);
            }
        }
    }

    #[test]
    fn frame_streams_replay_in_order(frames in prop::collection::vec(arb_frame(), 0..12)) {
        let mut stream = Vec::new();
        let mut scratch = Vec::new();
        for frame in &frames {
            tlbsim_service::write_frame(&mut stream, frame, &mut scratch)
                .expect("in-memory write");
        }
        let mut reader = stream.as_slice();
        let mut payload = Vec::new();
        for frame in &frames {
            let got = read_frame(&mut reader, &mut payload).expect("stream replays");
            prop_assert_eq!(&got, frame);
        }
        prop_assert!(matches!(
            read_frame(&mut reader, &mut payload),
            Err(WireError::Disconnected)
        ));
    }
}

#[test]
fn handshake_version_is_stable() {
    // The version constant participates in every handshake; changing it
    // is a protocol revision and must be deliberate (update
    // docs/PROTOCOL.md alongside).
    assert_eq!(PROTOCOL_VERSION, 3);
}
