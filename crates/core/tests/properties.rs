//! Property-based tests for the prediction-table machinery and the
//! prefetching mechanisms' global invariants.

use proptest::prelude::*;
use tlbsim_core::{
    Associativity, CandidateBuf, Distance, MissContext, Pc, PredictionTable, PrefetcherConfig,
    PrefetcherKind, SlotList, VirtPage,
};

/// Strategy for valid (rows, associativity) geometries.
fn geometry() -> impl Strategy<Value = (usize, Associativity)> {
    prop_oneof![
        (1usize..=512).prop_map(|r| (r, Associativity::Full)),
        (1usize..=512).prop_map(|r| (r, Associativity::Direct)),
        (1usize..=128).prop_map(|half| (half * 2, Associativity::ways_of(2))),
        (1usize..=64).prop_map(|q| (q * 4, Associativity::ways_of(4))),
    ]
}

fn any_kind() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::Sequential),
        Just(PrefetcherKind::Stride),
        Just(PrefetcherKind::Markov),
        Just(PrefetcherKind::Recency),
        Just(PrefetcherKind::Distance),
    ]
}

proptest! {
    /// The table never exceeds its configured capacity and lookups after
    /// insert observe the inserted value.
    #[test]
    fn table_capacity_and_lookup((rows, assoc) in geometry(), keys in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut table: PredictionTable<VirtPage, u64> = PredictionTable::new(rows, assoc).unwrap();
        for (i, k) in keys.iter().enumerate() {
            table.insert(VirtPage::new(*k), i as u64);
            prop_assert!(table.len() <= table.capacity());
            // The just-inserted key must be resident with its value.
            prop_assert_eq!(table.get(VirtPage::new(*k)), Some(&(i as u64)));
        }
    }

    /// Insertions into a direct-mapped table agree with a naive modulo
    /// model: a lookup hit implies the key was the last insert into its
    /// set.
    #[test]
    fn direct_mapped_matches_reference_model(keys in prop::collection::vec(0u64..1_000, 1..300)) {
        let rows = 16usize;
        let mut table: PredictionTable<VirtPage, usize> =
            PredictionTable::new(rows, Associativity::Direct).unwrap();
        let mut model: std::collections::HashMap<u64, (u64, usize)> = Default::default();
        for (i, k) in keys.iter().enumerate() {
            table.insert(VirtPage::new(*k), i);
            model.insert(k % rows as u64, (*k, i));
        }
        for set in 0..rows as u64 {
            if let Some((k, v)) = model.get(&set) {
                prop_assert_eq!(table.get(VirtPage::new(*k)), Some(v));
            }
        }
    }

    /// Slot lists preserve the most recent `capacity` distinct items.
    #[test]
    fn slot_list_keeps_recent_items(cap in 1usize..6, items in prop::collection::vec(0u32..20, 1..100)) {
        let mut slots = SlotList::new(cap);
        for x in &items {
            slots.insert(*x);
        }
        // Walk the history backwards collecting distinct items.
        let mut expected = Vec::new();
        for x in items.iter().rev() {
            if !expected.contains(x) {
                expected.push(*x);
            }
            if expected.len() == cap {
                break;
            }
        }
        let got: Vec<u32> = slots.iter().copied().collect();
        prop_assert_eq!(got, expected);
    }

    /// No mechanism ever prefetches the page that just missed, and the
    /// decision size respects the mechanism's own declared bound.
    #[test]
    fn decisions_respect_declared_bounds(
        kind in any_kind(),
        pages in prop::collection::vec(0u64..2_000, 1..300),
        pcs in prop::collection::vec(0u64..64, 1..300),
    ) {
        let mut p = PrefetcherConfig::new(kind).build().unwrap();
        let (_, max) = p.profile().max_prefetches;
        for (i, page) in pages.iter().enumerate() {
            let pc = Pc::new(pcs[i % pcs.len()] * 4);
            let ctx = MissContext {
                page: VirtPage::new(*page),
                pc,
                prefetch_buffer_hit: i % 3 == 0,
                evicted_tlb_entry: if i % 2 == 0 { Some(VirtPage::new(*page / 2)) } else { None },
            };
            let d = p.decide(&ctx);
            prop_assert!(d.pages.len() <= max as usize,
                "{} returned {} pages (max {})", p.name(), d.pages.len(), max);
            if kind != PrefetcherKind::Recency {
                // RP may legitimately prefetch a stack neighbour equal to
                // another page; but no scheme may prefetch the missed page.
                prop_assert!(!d.pages.contains(&VirtPage::new(*page)));
            }
        }
    }

    /// A long-lived sink reused across every miss (the engines' shape)
    /// observes exactly what a fresh `decide()` per miss observes.
    #[test]
    fn reused_sink_matches_fresh_decisions(
        kind in any_kind(),
        pages in prop::collection::vec(0u64..500, 1..150),
    ) {
        let mut via_sink = PrefetcherConfig::new(kind).build().unwrap();
        let mut via_decide = PrefetcherConfig::new(kind).build().unwrap();
        let mut sink = CandidateBuf::new();
        for (i, page) in pages.iter().enumerate() {
            let ctx = MissContext {
                page: VirtPage::new(*page),
                pc: Pc::new(page % 16 * 4),
                prefetch_buffer_hit: i % 3 == 0,
                evicted_tlb_entry: if i % 2 == 0 { Some(VirtPage::new(page / 2)) } else { None },
            };
            sink.clear();
            via_sink.on_miss(&ctx, &mut sink);
            let d = via_decide.decide(&ctx);
            prop_assert_eq!(sink.pages(), d.pages.as_slice());
            prop_assert_eq!(sink.maintenance_ops(), d.maintenance_ops);
        }
    }

    /// Mechanisms are deterministic: replaying the same miss stream on a
    /// fresh instance produces identical decisions.
    #[test]
    fn mechanisms_are_deterministic(
        kind in any_kind(),
        pages in prop::collection::vec(0u64..500, 1..150),
    ) {
        let mut a = PrefetcherConfig::new(kind).build().unwrap();
        let mut b = PrefetcherConfig::new(kind).build().unwrap();
        for page in &pages {
            let ctx = MissContext::demand(VirtPage::new(*page), Pc::new(page % 16 * 4));
            prop_assert_eq!(a.decide(&ctx), b.decide(&ctx));
        }
    }

    /// Flushing returns a mechanism to its initial observable behaviour.
    #[test]
    fn flush_resets_behaviour(
        kind in any_kind(),
        warmup in prop::collection::vec(0u64..500, 1..100),
        probe in prop::collection::vec(0u64..500, 1..50),
    ) {
        let mut warmed = PrefetcherConfig::new(kind).build().unwrap();
        for page in &warmup {
            warmed.decide(&MissContext::demand(VirtPage::new(*page), Pc::new(0)));
        }
        warmed.flush();
        let mut fresh = PrefetcherConfig::new(kind).build().unwrap();
        for page in &probe {
            let ctx = MissContext::demand(VirtPage::new(*page), Pc::new(0));
            prop_assert_eq!(warmed.decide(&ctx), fresh.decide(&ctx));
        }
    }

    /// Distance round-trip: page.offset(q.distance_from(p)) == q for all
    /// page pairs in a sane address range.
    #[test]
    fn distance_offset_roundtrip(a in 0u64..1u64 << 52, b in 0u64..1u64 << 52) {
        let (pa, pb) = (VirtPage::new(a), VirtPage::new(b));
        prop_assert_eq!(pa.offset(pb.distance_from(pa)), Some(pb));
    }

    /// Distance table keys never collide for distinct small distances.
    #[test]
    fn distance_keys_are_injective_in_range(d1 in -512i64..512, d2 in -512i64..512) {
        prop_assume!(d1 != d2);
        let mut table: PredictionTable<Distance, i64> =
            PredictionTable::new(2048, Associativity::Full).unwrap();
        table.insert(Distance::new(d1), d1);
        table.insert(Distance::new(d2), d2);
        prop_assert_eq!(table.get(Distance::new(d1)), Some(&d1));
        prop_assert_eq!(table.get(Distance::new(d2)), Some(&d2));
    }
}
