//! The generic on-chip prediction table used by ASP, MP and DP.
//!
//! The paper parameterises all three table-based prefetchers identically:
//! `r` rows, indexed direct-mapped / 2-way / 4-way / fully-associative,
//! with a tag of the indexing field stored per row (§2.6, Table 1). The
//! row payload differs per scheme (an RPT entry for ASP, `s` page slots
//! for MP, `s` distance slots for DP), so [`PredictionTable`] is generic
//! over both the key and the payload. Replacement within a set is true
//! LRU, matching row-eviction "because of conflicts" in §2.3.

use std::fmt;

use crate::assoc::{Associativity, InvalidGeometry};
use crate::types::Asid;

/// A key usable to index a [`PredictionTable`].
///
/// The returned index is reduced modulo the set count; the full key is
/// stored alongside each row as the tag.
pub trait TableKey: Copy + Eq {
    /// Projects the key onto an unsigned value used for set selection.
    fn index_value(self) -> u64;
}

impl TableKey for crate::types::Pc {
    fn index_value(self) -> u64 {
        // Word-align: low bits of real PCs are mostly zero, which would
        // cluster rows into few sets on direct-mapped tables.
        self.raw() >> 2
    }
}

impl TableKey for crate::types::VirtPage {
    fn index_value(self) -> u64 {
        self.number()
    }
}

impl TableKey for crate::types::Distance {
    fn index_value(self) -> u64 {
        // Two's-complement reinterpretation keeps small negative distances
        // (the common backward strides) from colliding with small positive
        // ones after the modulo.
        self.value() as u64
    }
}

#[derive(Debug, Clone)]
struct Row<K, V> {
    asid: Asid,
    tag: K,
    value: V,
    last_used: u64,
}

/// A fixed-capacity, set-associative, tagged prediction table with LRU
/// replacement inside each set.
///
/// Rows carry the [`Asid`] current at install time and lookups match on
/// `(asid, tag)` against the table's context register
/// ([`set_asid`](PredictionTable::set_asid)), so several contexts can
/// learn patterns in one shared-competitive table without reading each
/// other's rows. Set selection stays a pure function of the key — the
/// context lives only in the tag comparison.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{Associativity, Distance, PredictionTable};
///
/// let mut table: PredictionTable<Distance, u32> =
///     PredictionTable::new(256, Associativity::Direct)?;
/// table.insert(Distance::new(3), 7);
/// assert_eq!(table.get(Distance::new(3)), Some(&7));
/// assert_eq!(table.get(Distance::new(4)), None);
/// # Ok::<(), tlbsim_core::InvalidGeometry>(())
/// ```
#[derive(Debug, Clone)]
pub struct PredictionTable<K, V> {
    sets: Vec<Vec<Row<K, V>>>,
    ways: usize,
    rows: usize,
    assoc: Associativity,
    tick: u64,
    evictions: u64,
    asid: Asid,
}

impl<K: TableKey, V> PredictionTable<K, V> {
    /// Creates a table with `rows` total rows organised by `assoc`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `rows` is zero or not divisible by
    /// the way count implied by `assoc`.
    pub fn new(rows: usize, assoc: Associativity) -> Result<Self, InvalidGeometry> {
        let set_count = assoc.sets(rows)?;
        let ways = assoc.ways(rows);
        let mut sets = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            sets.push(Vec::with_capacity(ways));
        }
        Ok(PredictionTable {
            sets,
            ways,
            rows,
            assoc,
            tick: 0,
            evictions: 0,
            asid: Asid::DEFAULT,
        })
    }

    fn set_index(&self, key: K) -> usize {
        (key.index_value() % self.sets.len() as u64) as usize
    }

    /// Switches the current context: subsequent lookups and inserts are
    /// tagged with `asid`. No row is touched.
    pub fn set_asid(&mut self, asid: Asid) {
        self.asid = asid;
    }

    /// The current context tag.
    pub fn asid(&self) -> Asid {
        self.asid
    }

    /// Drops every row tagged with `asid` without counting conflict
    /// evictions — the targeted analogue of
    /// [`clear`](PredictionTable::clear).
    pub fn evict_asid(&mut self, asid: Asid) {
        for set in &mut self.sets {
            set.retain(|row| row.asid != asid);
        }
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `key` in the current context without updating recency
    /// ("peek").
    pub fn get(&self, key: K) -> Option<&V> {
        let set = &self.sets[self.set_index(key)];
        set.iter()
            .find(|row| row.tag == key && row.asid == self.asid)
            .map(|row| &row.value)
    }

    /// Looks up `key` in the current context, marking the row most
    /// recently used on a hit.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        let tick = self.bump();
        let asid = self.asid;
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        set.iter_mut()
            .find(|row| row.tag == key && row.asid == asid)
            .map(|row| {
                row.last_used = tick;
                &mut row.value
            })
    }

    /// Inserts `key -> value`, replacing an existing row with the same tag
    /// or evicting the LRU row of a full set.
    ///
    /// Returns the displaced `(key, value)` pair, if any. A replaced
    /// same-tag row returns its old value under the same key.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        let tick = self.bump();
        let ways = self.ways;
        let asid = self.asid;
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        if let Some(row) = set
            .iter_mut()
            .find(|row| row.tag == key && row.asid == asid)
        {
            row.last_used = tick;
            let old = std::mem::replace(&mut row.value, value);
            return Some((key, old));
        }
        let mut displaced = None;
        if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, row)| row.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let row = set.swap_remove(victim);
            self.evictions += 1;
            displaced = Some((row.tag, row.value));
        }
        set.push(Row {
            asid,
            tag: key,
            value,
            last_used: tick,
        });
        displaced
    }

    /// Returns the row for `key`, inserting `default()` first if absent.
    ///
    /// The row is marked most recently used either way. If the insertion
    /// evicts a conflicting row, that row is dropped (the hardware simply
    /// overwrites it).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let tick = self.bump();
        let ways = self.ways;
        let asid = self.asid;
        let idx = self.set_index(key);
        let set = &mut self.sets[idx];
        if let Some(pos) = set
            .iter()
            .position(|row| row.tag == key && row.asid == asid)
        {
            let row = &mut set[pos];
            row.last_used = tick;
            return &mut row.value;
        }
        if set.len() == ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, row)| row.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            set.swap_remove(victim);
            self.evictions += 1;
        }
        set.push(Row {
            asid,
            tag: key,
            value: default(),
            last_used: tick,
        });
        let pos = set.len() - 1;
        &mut set[pos].value
    }

    /// Returns `true` if a row with `key`'s tag is resident.
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Number of occupied rows.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no row is occupied.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Total row capacity (`r` in the paper).
    pub fn capacity(&self) -> usize {
        self.rows
    }

    /// Configured associativity.
    pub fn associativity(&self) -> Associativity {
        self.assoc
    }

    /// Number of rows displaced by conflicts since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Drops every row (a context-switch flush), keeping geometry and the
    /// eviction counter.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|row| (&row.tag, &row.value)))
    }
}

impl<K: TableKey + fmt::Debug, V> fmt::Display for PredictionTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prediction table: {} rows, {} assoc, {}/{} occupied",
            self.rows,
            self.assoc,
            self.len(),
            self.rows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Distance, Pc, VirtPage};

    fn direct(rows: usize) -> PredictionTable<VirtPage, u32> {
        PredictionTable::new(rows, Associativity::Direct).unwrap()
    }

    #[test]
    fn geometry_errors_propagate() {
        assert!(PredictionTable::<VirtPage, u32>::new(0, Associativity::Direct).is_err());
        assert!(PredictionTable::<VirtPage, u32>::new(10, Associativity::ways_of(4)).is_err());
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut t = direct(4);
        t.insert(VirtPage::new(0), 100);
        // Page 4 maps to the same set as page 0 in a 4-set direct table.
        let displaced = t.insert(VirtPage::new(4), 200);
        assert_eq!(displaced, Some((VirtPage::new(0), 100)));
        assert_eq!(t.get(VirtPage::new(4)), Some(&200));
        assert_eq!(t.get(VirtPage::new(0)), None);
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn same_tag_insert_replaces_value() {
        let mut t = direct(4);
        t.insert(VirtPage::new(1), 10);
        let old = t.insert(VirtPage::new(1), 20);
        assert_eq!(old, Some((VirtPage::new(1), 10)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn full_assoc_uses_lru_replacement() {
        let mut t: PredictionTable<VirtPage, u32> =
            PredictionTable::new(2, Associativity::Full).unwrap();
        t.insert(VirtPage::new(10), 1);
        t.insert(VirtPage::new(20), 2);
        // Touch page 10 so that 20 becomes LRU.
        assert_eq!(t.get_mut(VirtPage::new(10)), Some(&mut 1));
        let displaced = t.insert(VirtPage::new(30), 3);
        assert_eq!(displaced, Some((VirtPage::new(20), 2)));
        assert!(t.contains(VirtPage::new(10)));
        assert!(t.contains(VirtPage::new(30)));
    }

    #[test]
    fn set_associative_isolates_sets() {
        // 4 rows, 2-way => 2 sets. Even pages to set 0, odd to set 1.
        let mut t: PredictionTable<VirtPage, u32> =
            PredictionTable::new(4, Associativity::ways_of(2)).unwrap();
        t.insert(VirtPage::new(0), 1);
        t.insert(VirtPage::new(2), 2);
        t.insert(VirtPage::new(1), 3);
        // Filling set 0 further must not disturb set 1.
        t.insert(VirtPage::new(4), 4);
        assert!(t.contains(VirtPage::new(1)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let mut t = direct(8);
        *t.get_or_insert_with(VirtPage::new(3), || 0) += 5;
        *t.get_or_insert_with(VirtPage::new(3), || 0) += 5;
        assert_eq!(t.get(VirtPage::new(3)), Some(&10));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn negative_distance_keys_do_not_collide_with_positive() {
        let mut t: PredictionTable<Distance, u32> =
            PredictionTable::new(256, Associativity::Direct).unwrap();
        t.insert(Distance::new(1), 1);
        t.insert(Distance::new(-1), 2);
        assert_eq!(t.get(Distance::new(1)), Some(&1));
        assert_eq!(t.get(Distance::new(-1)), Some(&2));
    }

    #[test]
    fn pc_keys_ignore_byte_offset_bits() {
        // Two PCs differing only in the low 2 bits select the same set but
        // remain distinguishable by tag.
        let mut t: PredictionTable<Pc, u32> =
            PredictionTable::new(16, Associativity::Direct).unwrap();
        t.insert(Pc::new(0x1000), 1);
        assert_eq!(t.get(Pc::new(0x1001)), None);
    }

    #[test]
    fn clear_empties_but_keeps_geometry() {
        let mut t = direct(4);
        t.insert(VirtPage::new(1), 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 4);
    }

    #[test]
    fn iter_visits_all_rows() {
        let mut t = direct(8);
        for i in 0..5u64 {
            t.insert(VirtPage::new(i), i as u32);
        }
        let mut keys: Vec<u64> = t.iter().map(|(k, _)| k.number()).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn contexts_keep_separate_rows_under_one_tag() {
        let mut t = direct(4);
        t.insert(VirtPage::new(1), 10);
        t.set_asid(Asid::new(2));
        assert_eq!(t.get(VirtPage::new(1)), None);
        // Same key, other context: evicts the direct-mapped way (a
        // genuine cross-context conflict), then reads back its own row.
        t.insert(VirtPage::new(1), 20);
        assert_eq!(t.get(VirtPage::new(1)), Some(&20));
        assert_eq!(t.evictions(), 1);
        t.set_asid(Asid::DEFAULT);
        assert_eq!(t.get(VirtPage::new(1)), None);
    }

    #[test]
    fn evict_asid_drops_only_that_context_without_counting() {
        let mut t: PredictionTable<VirtPage, u32> =
            PredictionTable::new(8, Associativity::Full).unwrap();
        t.insert(VirtPage::new(1), 1);
        t.set_asid(Asid::new(1));
        t.insert(VirtPage::new(2), 2);
        t.insert(VirtPage::new(3), 3);
        t.evict_asid(Asid::new(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.evictions(), 0);
        t.set_asid(Asid::DEFAULT);
        assert_eq!(t.get(VirtPage::new(1)), Some(&1));
    }

    #[test]
    fn get_or_insert_with_is_context_scoped() {
        let mut t: PredictionTable<VirtPage, u32> =
            PredictionTable::new(8, Associativity::Full).unwrap();
        *t.get_or_insert_with(VirtPage::new(3), || 0) += 5;
        t.set_asid(Asid::new(7));
        *t.get_or_insert_with(VirtPage::new(3), || 100) += 1;
        assert_eq!(t.get(VirtPage::new(3)), Some(&101));
        t.set_asid(Asid::DEFAULT);
        assert_eq!(t.get(VirtPage::new(3)), Some(&5));
    }

    #[test]
    fn len_never_exceeds_capacity_under_pressure() {
        let mut t: PredictionTable<VirtPage, u32> =
            PredictionTable::new(8, Associativity::ways_of(2)).unwrap();
        for i in 0..1000u64 {
            t.insert(VirtPage::new(i * 3), i as u32);
            assert!(t.len() <= t.capacity());
        }
    }
}
