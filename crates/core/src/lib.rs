//! # tlbsim-core — TLB prefetching mechanisms
//!
//! This crate implements the contribution of *Going the Distance for TLB
//! Prefetching: An Application-Driven Study* (Kandiraju & Sivasubramaniam,
//! ISCA 2002): **distance prefetching** ([`DistancePrefetcher`]), together
//! with the four mechanisms the paper compares against, all adapted to
//! operate on the TLB miss stream:
//!
//! * [`SequentialPrefetcher`] — tagged sequential prefetching (SP),
//! * [`StridePrefetcher`] — Chen & Baer arbitrary stride prefetching (ASP),
//! * [`MarkovPrefetcher`] — Joseph & Grunwald Markov prefetching (MP),
//! * [`RecencyPrefetcher`] — Saulsbury et al. recency prefetching (RP),
//! * [`NullPrefetcher`] — the no-prefetching baseline.
//!
//! Three adaptive families extend the static grid, each test-proven
//! bit-identical to a static oracle in its degenerate configuration:
//!
//! * [`ConfidencePrefetcher`] — a 2-bit saturating confidence bank that
//!   throttles any base mechanism's degree and issue (threshold 0 with
//!   unlimited degree ≡ the bare base),
//! * [`TrendStridePrefetcher`] — majority vote over a sliding delta
//!   window (TP; window 2 ≡ ASP on monotone streams),
//! * [`EnsemblePrefetcher`] — set-dueling selection among component
//!   mechanisms (EP; a single component ≡ that component).
//!
//! All mechanisms implement [`TlbPrefetcher`]: they receive one
//! [`MissContext`] per TLB miss and push the pages to pull into the
//! prefetch buffer — plus any state-maintenance memory traffic — into a
//! caller-owned [`CandidateBuf`] sink. The shared prediction-table
//! hardware (`r` rows, `s` slots, D/2/4/F indexing — the knobs the paper
//! sweeps) lives in [`PredictionTable`] and [`SlotList`].
//!
//! ## The zero-allocation miss path
//!
//! The sink API exists because the evaluation loop runs billions of
//! times across the paper's sweeps. The contract:
//!
//! * callers allocate **one** [`CandidateBuf`] per simulation (it is a
//!   plain inline array) and [`clear`](CandidateBuf::clear) it before
//!   every [`TlbPrefetcher::on_miss`] call;
//! * mechanisms push candidates in priority order and never allocate on
//!   the miss path — anything allocating is segregated into explicitly
//!   named `*_snapshot` debug accessors;
//! * the owned [`PrefetchDecision`] shape survives as the convenience
//!   wrapper [`TlbPrefetcher::decide`] for tests and examples.
//!
//! ## Quick start
//!
//! ```
//! use tlbsim_core::{CandidateBuf, MissContext, Pc, PrefetcherConfig, VirtPage};
//!
//! // The paper's representative configuration: r = 256, s = 2, direct.
//! let mut dp = PrefetcherConfig::distance().build()?;
//! let mut sink = CandidateBuf::new();
//!
//! // Feed it a miss stream with alternating distances +1, +2 (the
//! // paper's example string 1, 2, 4, 5, 7, 8 …).
//! for page in [1u64, 2, 4, 5, 7, 8] {
//!     sink.clear();
//!     dp.on_miss(&MissContext::demand(VirtPage::new(page), Pc::new(0)), &mut sink);
//! }
//! // The pattern is now captured in two table rows; distance +2 at page
//! // 10 predicts +1 => page 11.
//! sink.clear();
//! dp.on_miss(&MissContext::demand(VirtPage::new(10), Pc::new(0)), &mut sink);
//! assert_eq!(sink.pages(), &[VirtPage::new(11)]);
//! # Ok::<(), tlbsim_core::ConfigError>(())
//! ```
//!
//! The TLB, prefetch buffer and page table live in `tlbsim-mmu`; the
//! simulation engines that drive these mechanisms live in `tlbsim-sim`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod assoc;
mod confidence;
mod config;
mod distance;
mod ensemble;
mod markov;
mod prefetcher;
mod recency;
mod sequential;
mod sink;
mod slots;
mod stride;
mod table;
mod trend;
mod types;

pub use assoc::{Associativity, InvalidGeometry};
pub use confidence::{ConfidenceConfig, ConfidencePrefetcher};
pub use config::{ConfigError, PrefetcherConfig, PrefetcherKind};
pub use distance::DistancePrefetcher;
pub use ensemble::EnsemblePrefetcher;
pub use markov::MarkovPrefetcher;
pub use prefetcher::{
    HardwareProfile, IndexSource, MissContext, NullPrefetcher, PrefetchDecision, RowBudget,
    StateLocation, TlbPrefetcher,
};
pub use recency::RecencyPrefetcher;
pub use sequential::SequentialPrefetcher;
pub use sink::CandidateBuf;
pub use slots::SlotList;
pub use stride::{RptEntry, RptState, StridePrefetcher};
pub use table::{PredictionTable, TableKey};
pub use trend::TrendStridePrefetcher;
pub use types::{
    AccessKind, Asid, Distance, InvalidPageSize, MemoryAccess, PageSize, Pc, PhysPage, VirtAddr,
    VirtPage,
};
