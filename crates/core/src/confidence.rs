//! Confidence-throttled prefetching — an adaptive wrapper over any base
//! mechanism.
//!
//! The two-level adaptive-filtering idea (PAPERS.md): keep a bank of
//! 2-bit saturating confidence counters, indexed like the prediction
//! tables and ASID-tagged, and only let the wrapped mechanism's
//! candidates through when the counter for the *triggering* miss page
//! sits at or above a threshold. A degree cap additionally truncates
//! how many candidates one miss may issue.
//!
//! Training is **shadow** training: every candidate the base mechanism
//! produces is recorded in a pending-prediction table — even when the
//! threshold suppresses its issue — so the counters keep learning while
//! the throttle is closed and can reopen it. A later miss on a pending
//! page is a vote *up* for the trigger that predicted it; a pending row
//! displaced before being consumed (the prediction never came true
//! within the table's reach) is a vote *down*.
//!
//! The degenerate configuration — threshold 0, unlimited degree
//! ([`ConfidenceConfig::passthrough`]) — copies every base candidate in
//! order and forwards the base's maintenance traffic untouched, so it is
//! **bit-identical** to running the base mechanism bare. The
//! `adaptive_oracles` integration test pins that through the full
//! simulation stack; it is this module's analogue of PR 8's flush-oracle
//! proof.

use crate::assoc::Associativity;
use crate::config::ConfigError;
use crate::prefetcher::{HardwareProfile, MissContext, TlbPrefetcher};
use crate::sink::CandidateBuf;
use crate::table::PredictionTable;
use crate::types::{Asid, VirtPage};

/// The two knobs of the confidence throttle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceConfig {
    /// Minimum counter value (0..=3) required to issue candidates.
    /// Zero lets everything through.
    pub threshold: u8,
    /// Maximum candidates issued per miss; `0` means unlimited.
    pub max_degree: u32,
}

impl ConfidenceConfig {
    /// The degenerate configuration, provably identical to the bare
    /// base mechanism: threshold 0, unlimited degree.
    pub fn passthrough() -> Self {
        ConfidenceConfig {
            threshold: 0,
            max_degree: 0,
        }
    }

    /// The default adaptive setting: issue only from weakly-confident
    /// rows and at most 4 candidates per miss.
    pub fn adaptive() -> Self {
        ConfidenceConfig {
            threshold: ConfidencePrefetcher::COUNTER_INIT,
            max_degree: 4,
        }
    }
}

impl Default for ConfidenceConfig {
    fn default() -> Self {
        ConfidenceConfig::adaptive()
    }
}

/// A pending (not yet confirmed) prediction: the page predicted maps to
/// the trigger page whose counter gets the credit. `None` marks a row
/// whose prediction was already consumed.
type PendingRow = Option<VirtPage>;

/// The confidence throttle around a boxed base mechanism.
///
/// # Examples
///
/// The passthrough configuration issues exactly what the base would:
///
/// ```
/// use tlbsim_core::{ConfidenceConfig, MissContext, Pc, PrefetcherConfig, VirtPage};
///
/// let mut cfg = PrefetcherConfig::distance();
/// cfg.confidence(ConfidenceConfig::passthrough());
/// let mut cdp = cfg.build()?;
/// assert_eq!(cdp.name(), "C+DP");
/// let mut dp = PrefetcherConfig::distance().build()?;
/// for page in [10u64, 11, 12, 13] {
///     let ctx = MissContext::demand(VirtPage::new(page), Pc::new(0));
///     assert_eq!(cdp.decide(&ctx), dp.decide(&ctx));
/// }
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
pub struct ConfidencePrefetcher {
    inner: Box<dyn TlbPrefetcher>,
    config: ConfidenceConfig,
    /// 2-bit saturating confidence per trigger page, ASID-tagged.
    counters: PredictionTable<VirtPage, u8>,
    /// Outstanding shadow predictions: predicted page -> trigger page.
    pending: PredictionTable<VirtPage, PendingRow>,
    /// The base mechanism's private sink (reused, never reallocated).
    scratch: CandidateBuf,
}

impl ConfidencePrefetcher {
    /// Counters saturate at this value (2-bit).
    pub const COUNTER_MAX: u8 = 3;

    /// Fresh rows start weakly confident, so un-trained pages prefetch
    /// under the default threshold and the throttle learns downward.
    pub const COUNTER_INIT: u8 = 2;

    /// Wraps `inner` with a counter bank of `rows` rows organised by
    /// `assoc` (the same geometry knobs as the prediction tables).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid bank geometry or a
    /// threshold above [`COUNTER_MAX`](Self::COUNTER_MAX).
    pub fn new(
        inner: Box<dyn TlbPrefetcher>,
        rows: usize,
        assoc: Associativity,
        config: ConfidenceConfig,
    ) -> Result<Self, ConfigError> {
        if config.threshold > Self::COUNTER_MAX {
            return Err(ConfigError::BadConfidenceThreshold {
                threshold: config.threshold,
            });
        }
        Ok(ConfidencePrefetcher {
            inner,
            config,
            counters: PredictionTable::new(rows, assoc)?,
            pending: PredictionTable::new(rows, assoc)?,
            scratch: CandidateBuf::new(),
        })
    }

    /// The throttle's configuration.
    pub fn config(&self) -> ConfidenceConfig {
        self.config
    }

    /// The current confidence for `trigger`, or the initial value if the
    /// bank holds no row for it (what the throttle would consult).
    pub fn confidence_of(&self, trigger: VirtPage) -> u8 {
        self.counters
            .get(trigger)
            .copied()
            .unwrap_or(Self::COUNTER_INIT)
    }

    fn reward(&mut self, trigger: VirtPage) {
        let c = self
            .counters
            .get_or_insert_with(trigger, || Self::COUNTER_INIT);
        *c = (*c + 1).min(Self::COUNTER_MAX);
    }

    fn penalize(&mut self, trigger: VirtPage) {
        let c = self
            .counters
            .get_or_insert_with(trigger, || Self::COUNTER_INIT);
        *c = c.saturating_sub(1);
    }
}

impl TlbPrefetcher for ConfidencePrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        // A miss on a page some earlier trigger predicted confirms that
        // prediction: consume the pending row and reward the trigger.
        if let Some(row) = self.pending.get_mut(ctx.page) {
            if let Some(trigger) = row.take() {
                self.reward(trigger);
            }
        }

        // The base mechanism always observes the miss (its tables train
        // regardless of whether the throttle lets candidates out).
        self.scratch.clear();
        self.inner.on_miss(ctx, &mut self.scratch);
        // State-maintenance traffic happens during observation, not
        // issue, so it is forwarded even when candidates are suppressed.
        sink.add_maintenance_ops(self.scratch.maintenance_ops());

        let open = self.confidence_of(ctx.page) >= self.config.threshold;
        let degree = if self.config.max_degree == 0 {
            usize::MAX
        } else {
            self.config.max_degree as usize
        };

        for i in 0..self.scratch.len() {
            let candidate = self.scratch.pages()[i];
            if open && i < degree {
                sink.push(candidate);
            }
            // Shadow-train on every candidate, issued or not. A displaced
            // un-consumed pending row is a prediction that never came
            // true: penalize its trigger.
            if let Some((_, Some(orphan))) = self.pending.insert(candidate, Some(ctx.page)) {
                self.penalize(orphan);
            }
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
        self.counters.clear();
        self.pending.clear();
    }

    fn set_asid(&mut self, asid: Asid) {
        // All wrapper state lives in tagged tables: no registers to bank.
        self.inner.set_asid(asid);
        self.counters.set_asid(asid);
        self.pending.set_asid(asid);
    }

    fn evict_asid(&mut self, asid: Asid) {
        self.inner.evict_asid(asid);
        self.counters.evict_asid(asid);
        self.pending.evict_asid(asid);
    }

    fn profile(&self) -> HardwareProfile {
        let mut profile = self.inner.profile();
        profile.name = self.name();
        // Suppression can zero any miss's issue.
        profile.max_prefetches.0 = 0;
        profile
    }

    fn name(&self) -> &'static str {
        match self.inner.name() {
            "none" => "C+none",
            "SP" => "C+SP",
            "ASP" => "C+ASP",
            "MP" => "C+MP",
            "RP" => "C+RP",
            "DP" => "C+DP",
            "TP" => "C+TP",
            "EP" => "C+EP",
            _ => "C+?",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherConfig;
    use crate::prefetcher::PrefetchDecision;
    use crate::types::Pc;

    fn wrap(conf: ConfidenceConfig) -> ConfidencePrefetcher {
        ConfidencePrefetcher::new(
            PrefetcherConfig::distance().build().unwrap(),
            256,
            Associativity::Direct,
            conf,
        )
        .unwrap()
    }

    fn miss(p: &mut (impl TlbPrefetcher + ?Sized), page: u64) -> PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(0)))
    }

    #[test]
    fn passthrough_is_bit_identical_to_base() {
        let mut wrapped = wrap(ConfidenceConfig::passthrough());
        let mut bare = PrefetcherConfig::distance().build().unwrap();
        // A stream mixing learnable strides and noise.
        let pages: Vec<u64> = (0..200)
            .map(|i| if i % 7 == 0 { i * 31 % 501 } else { i * 3 })
            .collect();
        for &page in &pages {
            assert_eq!(miss(&mut wrapped, page), miss(&mut *bare, page));
        }
    }

    #[test]
    fn confirmed_predictions_raise_confidence() {
        let mut p = wrap(ConfidenceConfig::passthrough());
        // +1 stride: from miss 3 on, DP predicts the next page, and the
        // next miss confirms it each time.
        for page in 0..10u64 {
            miss(&mut p, page);
        }
        assert_eq!(
            p.confidence_of(VirtPage::new(8)),
            ConfidencePrefetcher::COUNTER_MAX
        );
    }

    #[test]
    fn threshold_suppresses_but_shadow_training_reopens() {
        // Threshold above INIT: everything starts suppressed.
        let mut p = wrap(ConfidenceConfig {
            threshold: 3,
            max_degree: 0,
        });
        // Lap 1: every trigger page is fresh (counter at INIT = 2), so
        // nothing is issued even as DP learns the stride and its shadow
        // confirmations saturate the counters of the pages walked.
        for page in 0..20u64 {
            assert!(miss(&mut p, page).pages.is_empty());
        }
        // Lap 2: the same trigger pages recur with saturated counters
        // and the throttle reopens.
        let issued_late: usize = (0..20u64).map(|page| miss(&mut p, page).pages.len()).sum();
        assert!(issued_late > 0, "shadow training never reopened");
    }

    #[test]
    fn degree_caps_candidates_per_miss() {
        // Teach DP two followers of +1, then cap the degree at 1.
        let inner = PrefetcherConfig::distance().build().unwrap();
        let mut p = ConfidencePrefetcher::new(
            inner,
            256,
            Associativity::Direct,
            ConfidenceConfig {
                threshold: 0,
                max_degree: 1,
            },
        )
        .unwrap();
        for page in [0u64, 1, 3] {
            miss(&mut p, page);
        }
        for page in [10u64, 11, 14] {
            miss(&mut p, page);
        }
        miss(&mut p, 20);
        let d = miss(&mut p, 21);
        // Bare DP would emit two candidates here (+3 MRU then +2).
        assert_eq!(d.pages, vec![VirtPage::new(24)]);
    }

    #[test]
    fn counters_saturate_within_two_bits() {
        let mut p = wrap(ConfidenceConfig::passthrough());
        for page in 0..500u64 {
            miss(&mut p, page);
            assert!(p.confidence_of(VirtPage::new(page)) <= ConfidencePrefetcher::COUNTER_MAX);
        }
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let err = ConfidencePrefetcher::new(
            PrefetcherConfig::distance().build().unwrap(),
            256,
            Associativity::Direct,
            ConfidenceConfig {
                threshold: 4,
                max_degree: 0,
            },
        )
        .err();
        assert_eq!(
            err,
            Some(ConfigError::BadConfidenceThreshold { threshold: 4 })
        );
    }

    #[test]
    fn maintenance_ops_survive_suppression() {
        // RP's pointer maintenance is observation-time traffic: it must
        // flow even when the throttle never opens.
        let inner = PrefetcherConfig::recency().build().unwrap();
        let mut p = ConfidencePrefetcher::new(
            inner,
            256,
            Associativity::Direct,
            ConfidenceConfig {
                threshold: 3,
                max_degree: 0,
            },
        )
        .unwrap();
        let mut bare = PrefetcherConfig::recency().build().unwrap();
        let mut wrapped_ops = 0;
        let mut bare_ops = 0;
        for page in 0..50u64 {
            let ctx = MissContext {
                page: VirtPage::new(page % 7),
                pc: Pc::new(0),
                prefetch_buffer_hit: false,
                evicted_tlb_entry: Some(VirtPage::new(page % 5 + 100)),
            };
            wrapped_ops += p.decide(&ctx).maintenance_ops;
            bare_ops += bare.decide(&ctx).maintenance_ops;
        }
        assert_eq!(wrapped_ops, bare_ops);
        assert!(bare_ops > 0);
    }

    #[test]
    fn flush_resets_counters_and_pending() {
        let mut p = wrap(ConfidenceConfig::passthrough());
        for page in 0..10u64 {
            miss(&mut p, page);
        }
        p.flush();
        assert_eq!(
            p.confidence_of(VirtPage::new(8)),
            ConfidencePrefetcher::COUNTER_INIT
        );
        assert!(miss(&mut p, 100).is_none());
    }

    #[test]
    fn contexts_keep_separate_confidence() {
        let mut p = ConfidencePrefetcher::new(
            PrefetcherConfig::distance().build().unwrap(),
            256,
            Associativity::Full,
            ConfidenceConfig::passthrough(),
        )
        .unwrap();
        for page in 0..10u64 {
            miss(&mut p, page);
        }
        let learned = p.confidence_of(VirtPage::new(8));
        assert_eq!(learned, ConfidencePrefetcher::COUNTER_MAX);
        p.set_asid(Asid::new(1));
        // The other context's counters are untouched defaults.
        assert_eq!(
            p.confidence_of(VirtPage::new(8)),
            ConfidencePrefetcher::COUNTER_INIT
        );
        p.set_asid(Asid::DEFAULT);
        assert_eq!(p.confidence_of(VirtPage::new(8)), learned);
    }

    #[test]
    fn name_covers_every_base() {
        for (cfg, expect) in [
            (PrefetcherConfig::none(), "C+none"),
            (PrefetcherConfig::sequential(), "C+SP"),
            (PrefetcherConfig::stride(), "C+ASP"),
            (PrefetcherConfig::markov(), "C+MP"),
            (PrefetcherConfig::recency(), "C+RP"),
            (PrefetcherConfig::distance(), "C+DP"),
        ] {
            let p = ConfidencePrefetcher::new(
                cfg.build().unwrap(),
                64,
                Associativity::Direct,
                ConfidenceConfig::passthrough(),
            )
            .unwrap();
            assert_eq!(p.name(), expect);
            assert_eq!(p.profile().name, expect);
        }
    }
}
