//! Base address-space types shared by every subsystem of the simulator.
//!
//! All quantities are newtypes ([`VirtAddr`], [`VirtPage`], [`PhysPage`],
//! [`Pc`], [`Distance`]) so that page numbers, byte addresses, and signed
//! page deltas cannot be confused at compile time — the *distance* between
//! two TLB misses is the quantity the paper's contribution is built on, so
//! it gets a first-class signed type.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A virtual byte address as issued by the CPU.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{PageSize, VirtAddr};
///
/// let addr = VirtAddr::new(0x1234_5678);
/// let page = PageSize::DEFAULT.page_of(addr);
/// assert_eq!(page.number(), 0x1234_5678 >> 12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A virtual page number (a byte address shifted right by the page-size
/// bits).
///
/// The TLB, the prefetch buffer, and every prefetcher operate at page
/// granularity; this is the key type of the whole system.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{Distance, VirtPage};
///
/// let a = VirtPage::new(10);
/// let b = VirtPage::new(13);
/// assert_eq!(b.distance_from(a), Distance::new(3));
/// assert_eq!(a.offset(Distance::new(3)), Some(b));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtPage(u64);

impl VirtPage {
    /// Creates a virtual page from a raw page number.
    pub const fn new(number: u64) -> Self {
        VirtPage(number)
    }

    /// Returns the raw page number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// Returns the signed page distance from `earlier` to `self`
    /// (i.e. `self - earlier`), saturating at the `i64` range.
    pub fn distance_from(self, earlier: VirtPage) -> Distance {
        Distance(self.0.wrapping_sub(earlier.0) as i64)
    }

    /// Returns the page at `self + distance`, or `None` if the result
    /// would fall outside the virtual address space (below zero or above
    /// `u64::MAX`).
    pub fn offset(self, distance: Distance) -> Option<VirtPage> {
        let d = distance.value();
        if d >= 0 {
            self.0.checked_add(d as u64).map(VirtPage)
        } else {
            self.0.checked_sub(d.unsigned_abs()).map(VirtPage)
        }
    }

    /// Returns the next sequential page, or `None` on overflow.
    ///
    /// This is the page the tagged sequential prefetcher fetches.
    pub fn next(self) -> Option<VirtPage> {
        self.0.checked_add(1).map(VirtPage)
    }
}

impl From<u64> for VirtPage {
    fn from(number: u64) -> Self {
        VirtPage(number)
    }
}

impl fmt::Display for VirtPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vp:{:#x}", self.0)
    }
}

/// A physical page-frame number produced by the page table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysPage(u64);

impl PhysPage {
    /// Creates a physical frame from a raw frame number.
    pub const fn new(number: u64) -> Self {
        PhysPage(number)
    }

    /// Returns the raw frame number.
    pub const fn number(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PhysPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pp:{:#x}", self.0)
    }
}

/// An address-space identifier: the tag that scopes translation and
/// prediction state to one execution context.
///
/// Tagging the TLB, the prefetch buffer, and the prediction tables with
/// an ASID turns a context switch into a register write instead of a
/// flush — the flush-free multiprogramming model. Single-stream runs
/// leave every structure tagged with [`Asid::DEFAULT`], so the tag is
/// invisible (bit-identical) until a multiprogrammed run starts
/// switching it.
///
/// # Examples
///
/// ```
/// use tlbsim_core::Asid;
///
/// let a = Asid::new(7);
/// assert_eq!(a.raw(), 7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(Asid::default(), Asid::DEFAULT);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Asid(u16);

impl Asid {
    /// The default context: what every structure is tagged with until a
    /// multiprogrammed run installs another ASID.
    pub const DEFAULT: Asid = Asid(0);

    /// Creates an ASID from a raw context number.
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// Returns the raw context number.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns the context number widened for indexing per-context state
    /// banks.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for Asid {
    fn from(raw: u16) -> Self {
        Asid(raw)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid:{}", self.0)
    }
}

/// A program-counter value.
///
/// The arbitrary-stride prefetcher (ASP) indexes its reference prediction
/// table by the PC of the instruction that caused the TLB miss.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw value.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw PC value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc(raw)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

/// A signed page-granularity delta between two successive references.
///
/// The paper uses "distance" and "stride" interchangeably (§2, footnote 1);
/// this type is what the distance prefetcher's prediction table is indexed
/// by and what its slots contain.
///
/// # Examples
///
/// ```
/// use tlbsim_core::Distance;
///
/// let d = Distance::new(-2);
/// assert_eq!(d.value(), -2);
/// assert!(d.is_backward());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Distance(i64);

impl Distance {
    /// The zero distance (a repeated miss to the same page).
    pub const ZERO: Distance = Distance(0);

    /// The unit forward distance captured by sequential prefetching.
    pub const ONE: Distance = Distance(1);

    /// Creates a distance from a signed page delta.
    pub const fn new(value: i64) -> Self {
        Distance(value)
    }

    /// Returns the signed page delta.
    pub const fn value(self) -> i64 {
        self.0
    }

    /// Returns `true` for strictly forward (positive) distances.
    pub const fn is_forward(self) -> bool {
        self.0 > 0
    }

    /// Returns `true` for strictly backward (negative) distances.
    pub const fn is_backward(self) -> bool {
        self.0 < 0
    }
}

impl From<i64> for Distance {
    fn from(value: i64) -> Self {
        Distance(value)
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 0 {
            write!(f, "+{}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl std::ops::Neg for Distance {
    type Output = Distance;

    fn neg(self) -> Distance {
        Distance(-self.0)
    }
}

impl std::ops::Add for Distance {
    type Output = Distance;

    fn add(self, rhs: Distance) -> Distance {
        Distance(self.0.wrapping_add(rhs.0))
    }
}

/// Whether a memory reference reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccessKind {
    /// A data load.
    #[default]
    Read,
    /// A data store.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("R"),
            AccessKind::Write => f.write_str("W"),
        }
    }
}

/// One data-memory reference: the unit consumed by the simulator.
///
/// This mirrors what SimpleScalar's `sim-cache` hands to a TLB model: the
/// PC of the instruction and the virtual data address it touches. The
/// instruction TLB is out of scope, exactly as in the paper (which studies
/// the d-TLB only).
///
/// # Examples
///
/// ```
/// use tlbsim_core::{AccessKind, MemoryAccess, PageSize};
///
/// let acc = MemoryAccess::read(0x400_000, 0x1000_0000);
/// assert_eq!(acc.kind, AccessKind::Read);
/// assert_eq!(PageSize::DEFAULT.page_of(acc.vaddr).number(), 0x10000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// PC of the instruction issuing the reference.
    pub pc: Pc,
    /// Virtual byte address referenced.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates a read access.
    pub const fn read(pc: u64, vaddr: u64) -> Self {
        MemoryAccess {
            pc: Pc::new(pc),
            vaddr: VirtAddr::new(vaddr),
            kind: AccessKind::Read,
        }
    }

    /// Creates a write access.
    pub const fn write(pc: u64, vaddr: u64) -> Self {
        MemoryAccess {
            pc: Pc::new(pc),
            vaddr: VirtAddr::new(vaddr),
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.pc, self.kind, self.vaddr)
    }
}

/// A validated power-of-two page size.
///
/// The paper evaluates with 4096-byte pages; the sensitivity analysis
/// varies this, so the size is a parameter everywhere rather than a
/// constant.
///
/// # Examples
///
/// ```
/// use tlbsim_core::PageSize;
///
/// let ps = PageSize::new(8192)?;
/// assert_eq!(ps.bits(), 13);
/// # Ok::<(), tlbsim_core::InvalidPageSize>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageSize {
    bytes: u64,
}

/// Error returned by [`PageSize::new`] for a size that is zero or not a
/// power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidPageSize {
    bytes: u64,
}

impl fmt::Display for InvalidPageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page size {} is not a power of two", self.bytes)
    }
}

impl std::error::Error for InvalidPageSize {}

impl PageSize {
    /// The paper's default 4 KiB page size.
    pub const DEFAULT: PageSize = PageSize { bytes: 4096 };

    /// Creates a page size.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPageSize`] if `bytes` is zero or not a power of
    /// two.
    pub const fn new(bytes: u64) -> Result<Self, InvalidPageSize> {
        if bytes == 0 || !bytes.is_power_of_two() {
            Err(InvalidPageSize { bytes })
        } else {
            Ok(PageSize { bytes })
        }
    }

    /// Returns the size in bytes.
    pub const fn bytes(self) -> u64 {
        self.bytes
    }

    /// Returns the number of offset bits (log2 of the size).
    pub const fn bits(self) -> u32 {
        self.bytes.trailing_zeros()
    }

    /// Returns the virtual page containing `addr`.
    pub const fn page_of(self, addr: VirtAddr) -> VirtPage {
        VirtPage::new(addr.raw() >> self.bits())
    }

    /// Returns the first byte address of `page`.
    pub const fn base_of(self, page: VirtPage) -> VirtAddr {
        VirtAddr::new(page.number() << self.bits())
    }
}

impl Default for PageSize {
    fn default() -> Self {
        PageSize::DEFAULT
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bytes >= 1 << 20 {
            write!(f, "{}MiB", self.bytes >> 20)
        } else if self.bytes >= 1 << 10 {
            write!(f, "{}KiB", self.bytes >> 10)
        } else {
            write!(f, "{}B", self.bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_round_trips_through_offset() {
        let a = VirtPage::new(100);
        let b = VirtPage::new(42);
        let d = b.distance_from(a);
        assert_eq!(d, Distance::new(-58));
        assert_eq!(a.offset(d), Some(b));
    }

    #[test]
    fn offset_detects_underflow_and_overflow() {
        assert_eq!(VirtPage::new(1).offset(Distance::new(-2)), None);
        assert_eq!(VirtPage::new(u64::MAX).offset(Distance::new(1)), None);
        assert_eq!(
            VirtPage::new(5).offset(Distance::ZERO),
            Some(VirtPage::new(5))
        );
    }

    #[test]
    fn next_page_is_distance_one() {
        let p = VirtPage::new(7);
        assert_eq!(p.next(), p.offset(Distance::ONE));
    }

    #[test]
    fn page_size_validation() {
        assert!(PageSize::new(4096).is_ok());
        assert!(PageSize::new(0).is_err());
        assert!(PageSize::new(3000).is_err());
        let err = PageSize::new(12).unwrap_err();
        assert!(err.to_string().contains("12"));
    }

    #[test]
    fn page_of_and_base_of_are_inverse_on_page_boundaries() {
        let ps = PageSize::DEFAULT;
        let page = VirtPage::new(0xabcd);
        assert_eq!(ps.page_of(ps.base_of(page)), page);
    }

    #[test]
    fn page_extraction_uses_size_bits() {
        let ps4k = PageSize::new(4096).unwrap();
        let ps8k = PageSize::new(8192).unwrap();
        let addr = VirtAddr::new(0x2000);
        assert_eq!(ps4k.page_of(addr), VirtPage::new(2));
        assert_eq!(ps8k.page_of(addr), VirtPage::new(1));
    }

    #[test]
    fn display_formats_are_nonempty_and_stable() {
        assert_eq!(Distance::new(3).to_string(), "+3");
        assert_eq!(Distance::new(-3).to_string(), "-3");
        assert_eq!(AccessKind::Write.to_string(), "W");
        assert_eq!(PageSize::DEFAULT.to_string(), "4KiB");
        assert_eq!(PageSize::new(1 << 21).unwrap().to_string(), "2MiB");
    }

    #[test]
    fn memory_access_constructors_set_kind() {
        assert_eq!(MemoryAccess::read(1, 2).kind, AccessKind::Read);
        assert_eq!(MemoryAccess::write(1, 2).kind, AccessKind::Write);
    }

    #[test]
    fn asid_round_trips_and_displays() {
        let a = Asid::new(300);
        assert_eq!(a.raw(), 300);
        assert_eq!(a.index(), 300usize);
        assert_eq!(Asid::from(300u16), a);
        assert_eq!(a.to_string(), "asid:300");
        assert_eq!(Asid::default(), Asid::DEFAULT);
        assert_eq!(Asid::DEFAULT.raw(), 0);
    }

    #[test]
    fn distance_negation_and_addition() {
        assert_eq!(-Distance::new(4), Distance::new(-4));
        assert_eq!(Distance::new(4) + Distance::new(-6), Distance::new(-2));
    }
}
