//! Construction of prefetching mechanisms from a uniform description.
//!
//! The paper sweeps the same three parameters across mechanisms: the table
//! size `r`, the slot count `s` and the table associativity (§3.1).
//! [`PrefetcherConfig`] is the builder that carries those knobs, and
//! [`PrefetcherConfig::build`] is the factory producing a boxed
//! [`TlbPrefetcher`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assoc::{Associativity, InvalidGeometry};
use crate::confidence::{ConfidenceConfig, ConfidencePrefetcher};
use crate::distance::DistancePrefetcher;
use crate::ensemble::EnsemblePrefetcher;
use crate::markov::MarkovPrefetcher;
use crate::prefetcher::{NullPrefetcher, TlbPrefetcher};
use crate::recency::RecencyPrefetcher;
use crate::sequential::SequentialPrefetcher;
use crate::stride::StridePrefetcher;
use crate::trend::TrendStridePrefetcher;

/// Which prefetching mechanism to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching (the normalisation baseline).
    None,
    /// Tagged sequential prefetching (SP).
    Sequential,
    /// Arbitrary stride prefetching (ASP, Chen & Baer).
    Stride,
    /// Markov prefetching (MP, Joseph & Grunwald).
    Markov,
    /// Recency-based prefetching (RP, Saulsbury et al.).
    Recency,
    /// Distance prefetching (DP, this paper's contribution).
    Distance,
    /// Trend-vote stride prefetching (TP) — ASP with a majority-vote
    /// delta window instead of the last-two-deltas state machine.
    TrendStride,
    /// Set-dueling ensemble (EP) over a list of component mechanisms.
    Ensemble,
}

impl PrefetcherKind {
    /// All mechanisms that actually prefetch, in the paper's presentation
    /// order (Figure 7 bar groups): RP, MP, DP, ASP — plus SP first since
    /// §2 introduces it first.
    pub const ALL: [PrefetcherKind; 5] = [
        PrefetcherKind::Sequential,
        PrefetcherKind::Stride,
        PrefetcherKind::Markov,
        PrefetcherKind::Recency,
        PrefetcherKind::Distance,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::Sequential => "SP",
            PrefetcherKind::Stride => "ASP",
            PrefetcherKind::Markov => "MP",
            PrefetcherKind::Recency => "RP",
            PrefetcherKind::Distance => "DP",
            PrefetcherKind::TrendStride => "TP",
            PrefetcherKind::Ensemble => "EP",
        }
    }
}

impl fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Errors constructing a prefetcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Row count and associativity do not form a valid table.
    Geometry(InvalidGeometry),
    /// The slot count `s` is zero.
    ZeroSlots,
    /// The slot count `s` exceeds the inline row storage
    /// ([`SlotList::MAX_CAPACITY`](crate::SlotList::MAX_CAPACITY)) —
    /// rows live on the miss path and never heap-allocate.
    TooManySlots {
        /// The requested slot count.
        slots: usize,
    },
    /// The trend-vote window is outside the supported
    /// [`TrendStridePrefetcher::MIN_WINDOW`]`..=`[`TrendStridePrefetcher::MAX_WINDOW`]
    /// range.
    BadWindow {
        /// The requested window length.
        window: usize,
    },
    /// The confidence threshold exceeds the 2-bit counter maximum
    /// ([`ConfidencePrefetcher::COUNTER_MAX`]).
    BadConfidenceThreshold {
        /// The requested threshold.
        threshold: u8,
    },
    /// An ensemble was configured with no component mechanisms.
    EmptyEnsemble,
    /// An ensemble listed another ensemble as a component.
    NestedEnsemble,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Geometry(g) => write!(f, "invalid table geometry: {g}"),
            ConfigError::ZeroSlots => f.write_str("slot count must be at least 1"),
            ConfigError::TooManySlots { slots } => write!(
                f,
                "slot count {slots} exceeds the inline row maximum of {}",
                crate::SlotList::<u64>::MAX_CAPACITY
            ),
            ConfigError::BadWindow { window } => write!(
                f,
                "trend window {window} outside {}..={}",
                TrendStridePrefetcher::MIN_WINDOW,
                TrendStridePrefetcher::MAX_WINDOW
            ),
            ConfigError::BadConfidenceThreshold { threshold } => write!(
                f,
                "confidence threshold {threshold} exceeds the 2-bit counter maximum of {}",
                ConfidencePrefetcher::COUNTER_MAX
            ),
            ConfigError::EmptyEnsemble => f.write_str("ensemble needs at least one component"),
            ConfigError::NestedEnsemble => f.write_str("ensembles cannot contain other ensembles"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Geometry(g) => Some(g),
            _ => None,
        }
    }
}

impl From<InvalidGeometry> for ConfigError {
    fn from(err: InvalidGeometry) -> Self {
        ConfigError::Geometry(err)
    }
}

/// A uniform description of any prefetching mechanism.
///
/// Defaults mirror the paper's representative configuration: `r = 256`
/// rows, `s = 2` slots, direct-mapped tables.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{Associativity, PrefetcherConfig};
///
/// let mut cfg = PrefetcherConfig::distance();
/// cfg.rows(32).assoc(Associativity::Full);
/// let dp = cfg.build()?;
/// assert_eq!(dp.name(), "DP");
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetcherConfig {
    kind: PrefetcherKind,
    rows: usize,
    slots: usize,
    assoc: Associativity,
    pc_qualified: bool,
    pair_indexed: bool,
    window: usize,
    confidence: Option<ConfidenceConfig>,
    ensemble: Vec<PrefetcherKind>,
}

impl PrefetcherConfig {
    /// The paper's representative table size (`r = 256`).
    pub const DEFAULT_ROWS: usize = 256;
    /// The paper's representative slot count (`s = 2`).
    pub const DEFAULT_SLOTS: usize = 2;

    /// Default trend-vote window (`w = 8` deltas).
    pub const DEFAULT_WINDOW: usize = 8;

    /// Starts a configuration for `kind` with the paper's defaults.
    pub fn new(kind: PrefetcherKind) -> Self {
        PrefetcherConfig {
            kind,
            rows: Self::DEFAULT_ROWS,
            slots: Self::DEFAULT_SLOTS,
            assoc: Associativity::Direct,
            pc_qualified: false,
            pair_indexed: false,
            window: Self::DEFAULT_WINDOW,
            confidence: None,
            ensemble: Vec::new(),
        }
    }

    /// The no-prefetching baseline.
    pub fn none() -> Self {
        Self::new(PrefetcherKind::None)
    }

    /// Tagged sequential prefetching.
    pub fn sequential() -> Self {
        Self::new(PrefetcherKind::Sequential)
    }

    /// Arbitrary stride prefetching (Chen & Baer RPT).
    pub fn stride() -> Self {
        Self::new(PrefetcherKind::Stride)
    }

    /// Markov prefetching.
    pub fn markov() -> Self {
        Self::new(PrefetcherKind::Markov)
    }

    /// Recency-based prefetching.
    pub fn recency() -> Self {
        Self::new(PrefetcherKind::Recency)
    }

    /// Distance prefetching (the paper's contribution).
    pub fn distance() -> Self {
        Self::new(PrefetcherKind::Distance)
    }

    /// Trend-vote stride prefetching with the default window.
    pub fn trend_stride() -> Self {
        Self::new(PrefetcherKind::TrendStride)
    }

    /// A set-dueling ensemble over `components`, each instantiated with
    /// this configuration's geometry knobs.
    pub fn ensemble_of(components: &[PrefetcherKind]) -> Self {
        let mut cfg = Self::new(PrefetcherKind::Ensemble);
        cfg.ensemble = components.to_vec();
        cfg
    }

    /// Sets the prediction-table row count `r` (ignored by SP and RP).
    pub fn rows(&mut self, rows: usize) -> &mut Self {
        self.rows = rows;
        self
    }

    /// Sets the per-row slot count `s` (used by MP and DP).
    pub fn slots(&mut self, slots: usize) -> &mut Self {
        self.slots = slots;
        self
    }

    /// Sets the prediction-table associativity (ignored by SP and RP).
    pub fn assoc(&mut self, assoc: Associativity) -> &mut Self {
        self.assoc = assoc;
        self
    }

    /// Enables the PC-qualified distance index (a §4 "ongoing work"
    /// extension; only meaningful for [`PrefetcherKind::Distance`]).
    pub fn pc_qualified(&mut self, enabled: bool) -> &mut Self {
        self.pc_qualified = enabled;
        self
    }

    /// Returns the configured mechanism kind.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// Returns the configured row count `r`.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Returns the configured slot count `s`.
    pub fn slot_count(&self) -> usize {
        self.slots
    }

    /// Returns the configured table associativity.
    pub fn associativity(&self) -> Associativity {
        self.assoc
    }

    /// Returns whether the PC-qualified distance index is enabled.
    pub fn is_pc_qualified(&self) -> bool {
        self.pc_qualified
    }

    /// Enables indexing by the pair of the last two distances (the §2.5
    /// "set of consecutive distances" extension; only meaningful for
    /// [`PrefetcherKind::Distance`]).
    pub fn pair_indexed(&mut self, enabled: bool) -> &mut Self {
        self.pair_indexed = enabled;
        self
    }

    /// Returns whether pair indexing is enabled.
    pub fn is_pair_indexed(&self) -> bool {
        self.pair_indexed
    }

    /// Sets the trend-vote window length `w` (only meaningful for
    /// [`PrefetcherKind::TrendStride`]).
    pub fn window(&mut self, window: usize) -> &mut Self {
        self.window = window;
        self
    }

    /// Returns the configured trend-vote window length.
    pub fn window_len(&self) -> usize {
        self.window
    }

    /// Wraps the mechanism in a confidence throttle (any kind may be
    /// wrapped; [`ConfidenceConfig::passthrough`] is provably inert).
    pub fn confidence(&mut self, confidence: ConfidenceConfig) -> &mut Self {
        self.confidence = Some(confidence);
        self
    }

    /// Returns the confidence-throttle configuration, if one is set.
    pub fn confidence_config(&self) -> Option<ConfidenceConfig> {
        self.confidence
    }

    /// Returns the ensemble's component kinds (empty unless the kind is
    /// [`PrefetcherKind::Ensemble`]).
    pub fn ensemble_components(&self) -> &[PrefetcherKind] {
        &self.ensemble
    }

    /// The configuration one ensemble component of `kind` is built
    /// from: the same geometry knobs, no throttle, no nesting.
    pub fn component_config(&self, kind: PrefetcherKind) -> PrefetcherConfig {
        let mut cfg = PrefetcherConfig::new(kind);
        cfg.rows = self.rows;
        cfg.slots = self.slots;
        cfg.assoc = self.assoc;
        cfg.pc_qualified = self.pc_qualified;
        cfg.pair_indexed = self.pair_indexed;
        cfg.window = self.window;
        cfg
    }

    /// Instantiates the mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the table geometry is invalid or the
    /// slot count is zero.
    pub fn build(&self) -> Result<Box<dyn TlbPrefetcher>, ConfigError> {
        let base: Box<dyn TlbPrefetcher> = match self.kind {
            PrefetcherKind::None => Box::new(NullPrefetcher::new()),
            PrefetcherKind::Sequential => Box::new(SequentialPrefetcher::new()),
            PrefetcherKind::Stride => Box::new(StridePrefetcher::from_config(self)?),
            PrefetcherKind::Markov => Box::new(MarkovPrefetcher::from_config(self)?),
            PrefetcherKind::Recency => Box::new(RecencyPrefetcher::new()),
            PrefetcherKind::Distance => Box::new(DistancePrefetcher::from_config(self)?),
            PrefetcherKind::TrendStride => Box::new(TrendStridePrefetcher::from_config(self)?),
            PrefetcherKind::Ensemble => Box::new(EnsemblePrefetcher::from_config(self)?),
        };
        Ok(match self.confidence {
            None => base,
            Some(conf) => Box::new(ConfidencePrefetcher::new(
                base, self.rows, self.assoc, conf,
            )?),
        })
    }

    /// A compact label for figure legends, e.g. `DP,256,D`, `TP,8`,
    /// `EP:DP+ASP` — confidence-throttled variants gain a `C+` prefix
    /// (`C+DP,256,D`).
    pub fn label(&self) -> String {
        let base = match self.kind {
            PrefetcherKind::None => "none".to_owned(),
            PrefetcherKind::Sequential => "SP".to_owned(),
            PrefetcherKind::Recency => "RP".to_owned(),
            PrefetcherKind::Stride => format!("ASP,{}", self.rows),
            PrefetcherKind::TrendStride => format!("TP,{}", self.window),
            PrefetcherKind::Ensemble => format!(
                "EP:{}",
                self.ensemble
                    .iter()
                    .map(|k| k.abbrev())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
            _ => format!("{},{},{}", self.kind, self.rows, self.assoc.label()),
        };
        if self.confidence.is_some() {
            format!("C+{base}")
        } else {
            base
        }
    }

    /// Validates geometry and slots without building.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PrefetcherConfig::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.slots == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        if self.slots > crate::SlotList::<u64>::MAX_CAPACITY {
            return Err(ConfigError::TooManySlots { slots: self.slots });
        }
        match self.kind {
            PrefetcherKind::Stride
            | PrefetcherKind::Markov
            | PrefetcherKind::Distance
            | PrefetcherKind::TrendStride => {
                self.assoc.sets(self.rows)?;
            }
            _ => {}
        }
        if self.kind == PrefetcherKind::TrendStride
            && !(TrendStridePrefetcher::MIN_WINDOW..=TrendStridePrefetcher::MAX_WINDOW)
                .contains(&self.window)
        {
            return Err(ConfigError::BadWindow {
                window: self.window,
            });
        }
        if self.kind == PrefetcherKind::Ensemble {
            if self.ensemble.is_empty() {
                return Err(ConfigError::EmptyEnsemble);
            }
            if self.ensemble.contains(&PrefetcherKind::Ensemble) {
                return Err(ConfigError::NestedEnsemble);
            }
            for &kind in &self.ensemble {
                self.component_config(kind).validate()?;
            }
        }
        if let Some(conf) = self.confidence {
            if conf.threshold > ConfidencePrefetcher::COUNTER_MAX {
                return Err(ConfigError::BadConfidenceThreshold {
                    threshold: conf.threshold,
                });
            }
            // The counter bank shares the table geometry knobs, so they
            // must be valid even for otherwise untabled base kinds.
            self.assoc.sets(self.rows)?;
        }
        Ok(())
    }
}

impl Default for PrefetcherConfig {
    fn default() -> Self {
        PrefetcherConfig::distance()
    }
}

impl fmt::Display for PrefetcherConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = PrefetcherConfig::distance();
        assert_eq!(cfg.row_count(), 256);
        assert_eq!(cfg.slot_count(), 2);
        assert_eq!(cfg.associativity(), Associativity::Direct);
    }

    #[test]
    fn build_all_kinds() {
        for kind in PrefetcherKind::ALL {
            let p = PrefetcherConfig::new(kind).build().unwrap();
            assert_eq!(p.name(), kind.abbrev());
        }
        let none = PrefetcherConfig::none().build().unwrap();
        assert_eq!(none.name(), "none");
    }

    #[test]
    fn invalid_geometry_is_reported() {
        let mut cfg = PrefetcherConfig::markov();
        cfg.rows(10).assoc(Associativity::ways_of(4));
        assert!(matches!(cfg.build(), Err(ConfigError::Geometry(_))));
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_slots_is_rejected() {
        let mut cfg = PrefetcherConfig::distance();
        cfg.slots(0);
        assert_eq!(cfg.build().err(), Some(ConfigError::ZeroSlots));
    }

    #[test]
    fn geometry_is_irrelevant_for_untabled_schemes() {
        let mut cfg = PrefetcherConfig::recency();
        cfg.rows(10).assoc(Associativity::ways_of(4));
        assert!(cfg.build().is_ok());
    }

    #[test]
    fn labels_match_figure_legends() {
        let mut dp = PrefetcherConfig::distance();
        dp.rows(512).assoc(Associativity::Full);
        assert_eq!(dp.label(), "DP,512,F");
        assert_eq!(PrefetcherConfig::recency().label(), "RP");
        let mut asp = PrefetcherConfig::stride();
        asp.rows(64);
        assert_eq!(asp.label(), "ASP,64");
    }

    #[test]
    fn error_display_is_meaningful() {
        let err = ConfigError::ZeroSlots;
        assert!(err.to_string().contains("slot"));
        assert!(ConfigError::BadWindow { window: 1 }
            .to_string()
            .contains("window"));
        assert!(ConfigError::BadConfidenceThreshold { threshold: 9 }
            .to_string()
            .contains("threshold"));
        assert!(ConfigError::EmptyEnsemble.to_string().contains("component"));
        assert!(ConfigError::NestedEnsemble.to_string().contains("ensemble"));
    }

    #[test]
    fn adaptive_labels_are_distinct_and_stable() {
        let mut tp = PrefetcherConfig::trend_stride();
        tp.window(4);
        assert_eq!(tp.label(), "TP,4");
        let ep = PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        assert_eq!(ep.label(), "EP:DP+ASP");
        let mut cdp = PrefetcherConfig::distance();
        cdp.confidence(ConfidenceConfig::passthrough());
        assert_eq!(cdp.label(), "C+DP,256,D");
        let mut casp = PrefetcherConfig::stride();
        casp.rows(64).confidence(ConfidenceConfig::adaptive());
        assert_eq!(casp.label(), "C+ASP,64");
    }

    #[test]
    fn adaptive_kinds_build_and_name_themselves() {
        assert_eq!(
            PrefetcherConfig::trend_stride().build().unwrap().name(),
            "TP"
        );
        let ep = PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance]);
        assert_eq!(ep.build().unwrap().name(), "EP");
        let mut cdp = PrefetcherConfig::distance();
        cdp.confidence(ConfidenceConfig::adaptive());
        assert_eq!(cdp.build().unwrap().name(), "C+DP");
    }

    #[test]
    fn adaptive_validation_errors_are_reported() {
        let mut tp = PrefetcherConfig::trend_stride();
        tp.window(99);
        assert_eq!(tp.validate(), Err(ConfigError::BadWindow { window: 99 }));
        assert!(tp.build().is_err());

        let empty = PrefetcherConfig::ensemble_of(&[]);
        assert_eq!(empty.validate(), Err(ConfigError::EmptyEnsemble));

        let nested = PrefetcherConfig::ensemble_of(&[PrefetcherKind::Ensemble]);
        assert_eq!(nested.validate(), Err(ConfigError::NestedEnsemble));

        // A component's own geometry error propagates out of the list.
        let mut bad_geom = PrefetcherConfig::ensemble_of(&[PrefetcherKind::Markov]);
        bad_geom.rows(10).assoc(Associativity::ways_of(4));
        assert!(matches!(bad_geom.validate(), Err(ConfigError::Geometry(_))));

        let mut bad_conf = PrefetcherConfig::distance();
        bad_conf.confidence(ConfidenceConfig {
            threshold: 7,
            max_degree: 0,
        });
        assert_eq!(
            bad_conf.validate(),
            Err(ConfigError::BadConfidenceThreshold { threshold: 7 })
        );

        // The counter bank needs valid geometry even over untabled RP.
        let mut bad_bank = PrefetcherConfig::recency();
        bad_bank
            .rows(10)
            .assoc(Associativity::ways_of(4))
            .confidence(ConfidenceConfig::adaptive());
        assert!(matches!(bad_bank.validate(), Err(ConfigError::Geometry(_))));
    }
}
