//! The reusable, fixed-capacity prefetch-candidate sink.
//!
//! The paper's evaluation loop (§2, Figure 1) calls the prefetching
//! mechanism once per TLB miss, and the sweeps in `tlbsim-experiments`
//! replay that loop billions of times. Returning a `Vec<VirtPage>` from
//! every miss — the original API — put a heap allocation on the hottest
//! path of the whole simulator. [`CandidateBuf`] replaces it: an inline
//! array the engine allocates **once** and hands to
//! [`TlbPrefetcher::on_miss`](crate::TlbPrefetcher::on_miss) on every
//! miss, so the steady-state miss path performs no heap allocation at
//! all (a property the `zero_alloc` integration test in `tlbsim-sim`
//! enforces with a counting allocator).
//!
//! # Contract
//!
//! * The **caller** clears the sink before each `on_miss` call (engines
//!   keep one sink per engine; [`CandidateBuf::take_decision`] and the
//!   [`TlbPrefetcher::decide`](crate::TlbPrefetcher::decide) convenience
//!   wrapper do it for you).
//! * Mechanisms [`push`](CandidateBuf::push) candidates in **priority
//!   order** (MRU prediction first); engines issue them in push order.
//! * Capacity is [`CandidateBuf::CAPACITY`] — comfortably above the
//!   largest slot count the paper sweeps (`s = 6` in Figure 9). Pushes
//!   beyond capacity are dropped, counted in
//!   [`overflowed`](CandidateBuf::overflowed), and reported through
//!   `push`'s return value.

use crate::prefetcher::PrefetchDecision;
use crate::types::VirtPage;

/// A fixed-capacity, heap-free buffer of prefetch candidates plus the
/// maintenance-traffic count for one TLB miss.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{CandidateBuf, VirtPage};
///
/// let mut sink = CandidateBuf::new();
/// assert!(sink.push(VirtPage::new(7)));
/// assert!(sink.push(VirtPage::new(9)));
/// assert_eq!(sink.pages(), &[VirtPage::new(7), VirtPage::new(9)]);
/// sink.clear();
/// assert!(sink.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct CandidateBuf {
    pages: [VirtPage; Self::CAPACITY],
    len: usize,
    maintenance_ops: u32,
    overflowed: u64,
}

/// Equality is over the *observable* per-miss state — the live
/// candidates and the maintenance count. The stale array tail beyond
/// `len` (clear() does not scrub it) and the cumulative overflow
/// diagnostic are excluded.
impl PartialEq for CandidateBuf {
    fn eq(&self, other: &Self) -> bool {
        self.pages() == other.pages() && self.maintenance_ops == other.maintenance_ops
    }
}

impl Eq for CandidateBuf {}

impl CandidateBuf {
    /// Maximum candidates one miss can produce. The deepest mechanism
    /// configuration the paper evaluates predicts `s = 6` pages per miss
    /// (Figure 9's slot sweep); recency prefetching peaks at 3.
    pub const CAPACITY: usize = 8;

    /// A row can never predict more pages than one miss can sink —
    /// config validation caps `s` at `SlotList::MAX_CAPACITY`, so this
    /// pin makes sink overflow unreachable for validated mechanisms.
    const _SLOT_BOUND: () = assert!(crate::SlotList::<u64>::MAX_CAPACITY <= Self::CAPACITY);

    /// Creates an empty sink.
    pub const fn new() -> Self {
        CandidateBuf {
            pages: [VirtPage::new(0); Self::CAPACITY],
            len: 0,
            maintenance_ops: 0,
            overflowed: 0,
        }
    }

    /// Empties the sink for the next miss. The overflow counter is
    /// cumulative and survives clearing (it tracks sink lifetime, not
    /// one miss).
    pub fn clear(&mut self) {
        self.len = 0;
        self.maintenance_ops = 0;
    }

    /// Appends a candidate in priority order. Returns `false` (and
    /// counts the drop) if the sink is full.
    pub fn push(&mut self, page: VirtPage) -> bool {
        if self.len == Self::CAPACITY {
            self.overflowed += 1;
            return false;
        }
        self.pages[self.len] = page;
        self.len += 1;
        true
    }

    /// Adds state-maintenance memory operations (RP's pointer updates).
    pub fn add_maintenance_ops(&mut self, ops: u32) {
        self.maintenance_ops += ops;
    }

    /// The candidates pushed since the last [`clear`](Self::clear), in
    /// priority order.
    pub fn pages(&self) -> &[VirtPage] {
        &self.pages[..self.len]
    }

    /// Maintenance operations recorded since the last clear.
    pub fn maintenance_ops(&self) -> u32 {
        self.maintenance_ops
    }

    /// Candidates currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no candidate is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if nothing was recorded for this miss at all.
    pub fn is_none(&self) -> bool {
        self.len == 0 && self.maintenance_ops == 0
    }

    /// Total pushes dropped over this sink's lifetime because the sink
    /// was full. Unreachable for the built-in mechanisms (configuration
    /// validation caps `s` at the sink capacity); the engines
    /// `debug_assert` on it to catch future mechanisms that overflow.
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Iterates candidates in priority order.
    pub fn iter(&self) -> std::slice::Iter<'_, VirtPage> {
        self.pages().iter()
    }

    /// Converts the sink's contents into an owned [`PrefetchDecision`]
    /// and clears the sink — the allocating convenience bridge for tests
    /// and examples, **not** for the per-miss loop.
    pub fn take_decision(&mut self) -> PrefetchDecision {
        let decision = PrefetchDecision {
            pages: self.pages().to_vec(),
            maintenance_ops: self.maintenance_ops,
        };
        self.clear();
        decision
    }
}

impl Default for CandidateBuf {
    fn default() -> Self {
        CandidateBuf::new()
    }
}

impl<'a> IntoIterator for &'a CandidateBuf {
    type Item = &'a VirtPage;
    type IntoIter = std::slice::Iter<'a, VirtPage>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let sink = CandidateBuf::new();
        assert!(sink.is_empty());
        assert!(sink.is_none());
        assert_eq!(sink.pages(), &[]);
        assert_eq!(sink.maintenance_ops(), 0);
        assert_eq!(sink.overflowed(), 0);
    }

    #[test]
    fn push_preserves_priority_order() {
        let mut sink = CandidateBuf::new();
        for n in [5u64, 3, 9] {
            assert!(sink.push(VirtPage::new(n)));
        }
        let got: Vec<u64> = sink.iter().map(|p| p.number()).collect();
        assert_eq!(got, vec![5, 3, 9]);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut sink = CandidateBuf::new();
        for n in 0..CandidateBuf::CAPACITY as u64 {
            assert!(sink.push(VirtPage::new(n)));
        }
        assert!(!sink.push(VirtPage::new(99)));
        assert!(!sink.push(VirtPage::new(100)));
        assert_eq!(sink.len(), CandidateBuf::CAPACITY);
        assert_eq!(sink.overflowed(), 2);
        // The first CAPACITY pushes survive, in order.
        assert_eq!(sink.pages()[0], VirtPage::new(0));
        assert_eq!(
            sink.pages()[CandidateBuf::CAPACITY - 1],
            VirtPage::new(CandidateBuf::CAPACITY as u64 - 1)
        );
    }

    #[test]
    fn clear_resets_contents_but_not_overflow() {
        let mut sink = CandidateBuf::new();
        for n in 0..=CandidateBuf::CAPACITY as u64 {
            sink.push(VirtPage::new(n));
        }
        sink.add_maintenance_ops(4);
        sink.clear();
        assert!(sink.is_none());
        assert_eq!(sink.maintenance_ops(), 0);
        assert_eq!(sink.overflowed(), 1, "overflow counter is cumulative");
    }

    #[test]
    fn maintenance_ops_accumulate_within_one_miss() {
        let mut sink = CandidateBuf::new();
        sink.add_maintenance_ops(2);
        sink.add_maintenance_ops(2);
        assert_eq!(sink.maintenance_ops(), 4);
        assert!(!sink.is_none());
        assert!(sink.is_empty());
    }

    #[test]
    fn take_decision_converts_and_clears() {
        let mut sink = CandidateBuf::new();
        sink.push(VirtPage::new(1));
        sink.add_maintenance_ops(3);
        let d = sink.take_decision();
        assert_eq!(d.pages, vec![VirtPage::new(1)]);
        assert_eq!(d.maintenance_ops, 3);
        assert!(sink.is_none());
    }
}
