//! The per-row prediction slots shared by the Markov and distance
//! prefetchers.
//!
//! Each row of an MP or DP prediction table holds `s` slots "maintained in
//! LRU order" (paper §2.3/§2.5): the next few pages (MP) or distances (DP)
//! that followed the row's key in the past. [`SlotList`] implements exactly
//! that bounded most-recently-used list — backed by an **inline array**,
//! not a `Vec`, because prediction-table rows are created and evicted on
//! the TLB-miss hot path: a conflict eviction replaces a row with a fresh
//! `SlotList`, and a heap-backed row would make every replacement an
//! allocation. [`SlotList::MAX_CAPACITY`] (8) comfortably covers the
//! largest slot count the paper sweeps (`s = 6`, Figure 9).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Inline slot storage bound (the hard upper limit on `s`).
const MAX_SLOTS: usize = 8;

/// A bounded list of predictions kept in most-recently-used order.
///
/// Inserting an element that is already present promotes it to the MRU
/// position; inserting a new element into a full list evicts the LRU one.
/// Iteration yields MRU first, which is the order predictions are issued
/// in when the prefetch buffer cannot hold them all.
///
/// Storage is a fixed inline array of [`SlotList::MAX_CAPACITY`] slots;
/// the configured capacity (`s`) only bounds how many are used. The
/// whole row is therefore `Copy`-free but heap-free, so table rows can
/// be created, cloned and evicted without touching the allocator.
///
/// # Examples
///
/// ```
/// use tlbsim_core::SlotList;
///
/// let mut slots = SlotList::new(2);
/// slots.insert(10);
/// slots.insert(20);
/// slots.insert(10); // promotes 10, keeps 20
/// slots.insert(30); // evicts 20 (the LRU entry)
/// assert_eq!(slots.iter().copied().collect::<Vec<_>>(), vec![30, 10]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotList<T> {
    /// MRU-first order; `Some` in positions `0..len`, `None` beyond.
    items: [Option<T>; MAX_SLOTS],
    len: usize,
    capacity: usize,
}

impl<T: PartialEq> SlotList<T> {
    /// The inline storage bound: the hard upper limit on `s`. Matches
    /// the candidate sink's capacity (`CandidateBuf::CAPACITY`) — a row
    /// can never predict more pages than one miss can sink.
    pub const MAX_CAPACITY: usize = MAX_SLOTS;

    /// Creates an empty list holding at most `capacity` predictions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a row with no slots cannot predict
    /// anything) or exceeds [`SlotList::MAX_CAPACITY`] — both indicate a
    /// configuration bug, and `PrefetcherConfig::validate` reports the
    /// latter as an error before any table is built.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot list capacity must be at least 1");
        assert!(
            capacity <= Self::MAX_CAPACITY,
            "slot list capacity {capacity} exceeds the inline maximum {}",
            Self::MAX_CAPACITY
        );
        SlotList {
            items: Default::default(),
            len: 0,
            capacity,
        }
    }

    /// Inserts `item` at the MRU position, promoting it if already
    /// present and evicting the LRU element if the list is full.
    ///
    /// Returns the evicted element, if any.
    pub fn insert(&mut self, item: T) -> Option<T> {
        if let Some(pos) = self.items[..self.len]
            .iter()
            .position(|x| x.as_ref() == Some(&item))
        {
            // Promote in place; the caller's `item` is dropped and the
            // stored copy moves to the front.
            self.items[..=pos].rotate_right(1);
            return None;
        }
        let evicted = if self.len == self.capacity {
            self.items[self.len - 1].take()
        } else {
            self.len += 1;
            None
        };
        self.items[..self.len].rotate_right(1);
        self.items[0] = Some(item);
        evicted
    }

    /// Returns `true` if `item` is present.
    pub fn contains(&self, item: &T) -> bool {
        self.items[..self.len]
            .iter()
            .any(|x| x.as_ref() == Some(item))
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured number of slots (`s` in the paper).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over predictions, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items[..self.len].iter().filter_map(Option::as_ref)
    }

    /// Removes every prediction, keeping the capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.items[..self.len] {
            *slot = None;
        }
        self.len = 0;
    }
}

impl<T: PartialEq + fmt::Display> fmt::Display for SlotList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = SlotList::<u32>::new(0);
    }

    #[test]
    #[should_panic(expected = "inline maximum")]
    fn oversized_capacity_panics() {
        let _ = SlotList::<u32>::new(SlotList::<u32>::MAX_CAPACITY + 1);
    }

    #[test]
    fn insert_until_full_then_evicts_lru() {
        let mut s = SlotList::new(3);
        assert_eq!(s.insert(1), None);
        assert_eq!(s.insert(2), None);
        assert_eq!(s.insert(3), None);
        // 1 is now LRU.
        assert_eq!(s.insert(4), Some(1));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 3, 2]);
    }

    #[test]
    fn reinsert_promotes_without_eviction() {
        let mut s = SlotList::new(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.insert(1), None);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_and_clear() {
        let mut s = SlotList::new(2);
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn iteration_is_mru_first() {
        let mut s = SlotList::new(4);
        for x in [1, 2, 3] {
            s.insert(x);
        }
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![3, 2, 1]);
    }

    #[test]
    fn display_lists_mru_first() {
        let mut s = SlotList::new(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.to_string(), "[2, 1]");
        let empty = SlotList::<u32>::new(1);
        assert_eq!(empty.to_string(), "[]");
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut s = SlotList::new(2);
        for x in 0..100 {
            s.insert(x);
            assert!(s.len() <= 2);
        }
    }

    #[test]
    fn max_capacity_list_works() {
        let cap = SlotList::<u64>::MAX_CAPACITY;
        let mut s = SlotList::new(cap);
        for x in 0..(cap as u64 + 3) {
            s.insert(x);
        }
        let got: Vec<u64> = s.iter().copied().collect();
        let expected: Vec<u64> = (3..cap as u64 + 3).rev().collect();
        assert_eq!(got, expected);
    }
}
