//! The per-row prediction slots shared by the Markov and distance
//! prefetchers.
//!
//! Each row of an MP or DP prediction table holds `s` slots "maintained in
//! LRU order" (paper §2.3/§2.5): the next few pages (MP) or distances (DP)
//! that followed the row's key in the past. [`SlotList`] implements exactly
//! that bounded most-recently-used list.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A bounded list of predictions kept in most-recently-used order.
///
/// Inserting an element that is already present promotes it to the MRU
/// position; inserting a new element into a full list evicts the LRU one.
/// Iteration yields MRU first, which is the order predictions are issued
/// in when the prefetch buffer cannot hold them all.
///
/// # Examples
///
/// ```
/// use tlbsim_core::SlotList;
///
/// let mut slots = SlotList::new(2);
/// slots.insert(10);
/// slots.insert(20);
/// slots.insert(10); // promotes 10, keeps 20
/// slots.insert(30); // evicts 20 (the LRU entry)
/// assert_eq!(slots.iter().copied().collect::<Vec<_>>(), vec![30, 10]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotList<T> {
    /// MRU-first order; `items.len() <= capacity`.
    items: Vec<T>,
    capacity: usize,
}

impl<T: PartialEq> SlotList<T> {
    /// Creates an empty list holding at most `capacity` predictions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a row with no slots cannot predict
    /// anything and indicates a configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot list capacity must be at least 1");
        SlotList {
            items: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Inserts `item` at the MRU position, promoting it if already
    /// present and evicting the LRU element if the list is full.
    ///
    /// Returns the evicted element, if any.
    pub fn insert(&mut self, item: T) -> Option<T> {
        if let Some(pos) = self.items.iter().position(|x| *x == item) {
            let existing = self.items.remove(pos);
            self.items.insert(0, existing);
            // The caller's `item` is dropped; the stored copy is promoted.
            return None;
        }
        let evicted = if self.items.len() == self.capacity {
            self.items.pop()
        } else {
            None
        };
        self.items.insert(0, item);
        evicted
    }

    /// Returns `true` if `item` is present.
    pub fn contains(&self, item: &T) -> bool {
        self.items.contains(item)
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Configured number of slots (`s` in the paper).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over predictions, most recently used first.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Removes every prediction, keeping the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a, T: PartialEq> IntoIterator for &'a SlotList<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: PartialEq + fmt::Display> fmt::Display for SlotList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_panics() {
        let _ = SlotList::<u32>::new(0);
    }

    #[test]
    fn insert_until_full_then_evicts_lru() {
        let mut s = SlotList::new(3);
        assert_eq!(s.insert(1), None);
        assert_eq!(s.insert(2), None);
        assert_eq!(s.insert(3), None);
        // 1 is now LRU.
        assert_eq!(s.insert(4), Some(1));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![4, 3, 2]);
    }

    #[test]
    fn reinsert_promotes_without_eviction() {
        let mut s = SlotList::new(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.insert(1), None);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_and_clear() {
        let mut s = SlotList::new(2);
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 2);
    }

    #[test]
    fn iteration_is_mru_first() {
        let mut s = SlotList::new(4);
        for x in [1, 2, 3] {
            s.insert(x);
        }
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![3, 2, 1]);
    }

    #[test]
    fn display_lists_mru_first() {
        let mut s = SlotList::new(2);
        s.insert(1);
        s.insert(2);
        assert_eq!(s.to_string(), "[2, 1]");
        let empty = SlotList::<u32>::new(1);
        assert_eq!(empty.to_string(), "[]");
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut s = SlotList::new(2);
        for x in 0..100 {
            s.insert(x);
            assert!(s.len() <= 2);
        }
    }
}
