//! Arbitrary stride prefetching (ASP), §2.2 of the paper.
//!
//! ASP is Chen & Baer's reference prediction table (RPT) adapted to the
//! TLB miss stream. Each row is indexed by the PC of the missing
//! instruction and holds the page that PC last missed on, the stride
//! between its last two misses, and a two-bit state. A prefetch of
//! `page + stride` is issued only once the same stride has been observed
//! twice in a row ("no change in the stride for more than two references"
//! — the *steady* state), which guards against spurious stride changes.

use crate::assoc::Associativity;
use crate::config::{ConfigError, PrefetcherConfig};
use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::table::PredictionTable;
use crate::types::{Distance, Pc, VirtPage};

/// The Chen–Baer RPT state machine.
///
/// Transitions on each miss by the same PC, where *match* means the newly
/// observed stride equals the stored one:
///
/// | state        | match        | mismatch                       |
/// |--------------|--------------|--------------------------------|
/// | Initial      | → Steady     | update stride, → Transient     |
/// | Transient    | → Steady     | update stride, → NoPrediction  |
/// | Steady       | → Steady     | keep stride, → Initial         |
/// | NoPrediction | → Transient  | update stride, → NoPrediction  |
///
/// Prefetches are issued only from `Steady`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RptState {
    /// Row was just allocated or a steady stride was broken once.
    Initial,
    /// One consistent stride observed; not yet trusted.
    Transient,
    /// Stride confirmed twice or more; predictions are issued.
    Steady,
    /// Stride is erratic; predictions are suppressed.
    NoPrediction,
}

/// One RPT row: the paper's "(i) the address that was referenced the last
/// time the PC came to this instruction, (ii) the corresponding stride,
/// and (iii) a state".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RptEntry {
    /// Page of this PC's previous TLB miss.
    pub prev_page: VirtPage,
    /// Stride between this PC's last two misses.
    pub stride: Distance,
    /// Confidence state.
    pub state: RptState,
}

/// The arbitrary stride prefetcher.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{MissContext, Pc, PrefetcherConfig, StridePrefetcher, TlbPrefetcher, VirtPage};
///
/// let mut asp = StridePrefetcher::from_config(&PrefetcherConfig::stride())?;
/// let pc = Pc::new(0x40);
/// // Three misses with stride 5 establish the steady state…
/// for page in [100u64, 105, 110] {
///     asp.decide(&MissContext::demand(VirtPage::new(page), pc));
/// }
/// // …so the fourth predicts page + 5.
/// let d = asp.decide(&MissContext::demand(VirtPage::new(115), pc));
/// assert_eq!(d.pages, vec![VirtPage::new(120)]);
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: PredictionTable<Pc, RptEntry>,
}

impl StridePrefetcher {
    /// Creates an ASP with `rows` RPT rows organised by `assoc`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry.
    pub fn new(rows: usize, assoc: Associativity) -> Result<Self, ConfigError> {
        Ok(StridePrefetcher {
            table: PredictionTable::new(rows, assoc)?,
        })
    }

    /// Creates an ASP from a uniform configuration (slots are ignored:
    /// the RPT makes at most one prediction per miss by definition).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry.
    pub fn from_config(config: &PrefetcherConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Self::new(config.row_count(), config.associativity())
    }

    /// Read-only view of an RPT row, if present (for tests/inspection).
    pub fn entry(&self, pc: Pc) -> Option<&RptEntry> {
        self.table.get(pc)
    }

    /// Number of occupied RPT rows.
    pub fn occupancy(&self) -> usize {
        self.table.len()
    }
}

impl TlbPrefetcher for StridePrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let page = ctx.page;
        match self.table.get_mut(ctx.pc) {
            None => {
                // First miss by this PC: allocate in Initial state with a
                // zero stride; no prediction yet.
                self.table.insert(
                    ctx.pc,
                    RptEntry {
                        prev_page: page,
                        stride: Distance::ZERO,
                        state: RptState::Initial,
                    },
                );
            }
            Some(entry) => {
                let observed = page.distance_from(entry.prev_page);
                let matches = observed == entry.stride;
                entry.state = match (entry.state, matches) {
                    (RptState::Initial, true) => RptState::Steady,
                    (RptState::Initial, false) => {
                        entry.stride = observed;
                        RptState::Transient
                    }
                    (RptState::Transient, true) => RptState::Steady,
                    (RptState::Transient, false) => {
                        entry.stride = observed;
                        RptState::NoPrediction
                    }
                    (RptState::Steady, true) => RptState::Steady,
                    // A broken steady stride keeps the old stride and
                    // demotes to Initial (classic Chen–Baer).
                    (RptState::Steady, false) => RptState::Initial,
                    (RptState::NoPrediction, true) => RptState::Transient,
                    (RptState::NoPrediction, false) => {
                        entry.stride = observed;
                        RptState::NoPrediction
                    }
                };
                entry.prev_page = page;
                if entry.state == RptState::Steady && entry.stride != Distance::ZERO {
                    if let Some(target) = page.offset(entry.stride) {
                        sink.push(target);
                    }
                }
            }
        }
    }

    fn flush(&mut self) {
        self.table.clear();
    }

    fn set_asid(&mut self, asid: crate::types::Asid) {
        // All of ASP's state lives in tagged RPT rows (prev_page and
        // stride are per-row, not global registers), so the context
        // switch is just the table's tag register.
        self.table.set_asid(asid);
    }

    fn evict_asid(&mut self, asid: crate::types::Asid) {
        self.table.evict_asid(asid);
    }

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "ASP",
            rows: RowBudget::Rows(self.table.capacity()),
            row_contents: "PC Tag, Page #, Stride and State",
            location: StateLocation::OnChip,
            index: IndexSource::ProgramCounter,
            memory_ops_per_miss: 0,
            max_prefetches: (1, 1),
        }
    }

    fn name(&self) -> &'static str {
        "ASP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asp(rows: usize) -> StridePrefetcher {
        StridePrefetcher::new(rows, Associativity::Direct).unwrap()
    }

    fn miss(p: &mut StridePrefetcher, pc: u64, page: u64) -> crate::PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(pc)))
    }

    #[test]
    fn needs_two_confirmations_before_prefetching() {
        let mut p = asp(64);
        assert!(miss(&mut p, 4, 100).is_none()); // allocate
        assert!(miss(&mut p, 4, 103).is_none()); // Initial -> Transient (stride 3)
        assert!(miss(&mut p, 4, 106).pages == vec![VirtPage::new(109)]); // Steady
    }

    #[test]
    fn zero_stride_is_never_prefetched() {
        let mut p = asp(64);
        for _ in 0..5 {
            let d = miss(&mut p, 4, 100);
            assert!(d.is_none());
        }
    }

    #[test]
    fn negative_strides_are_tracked() {
        let mut p = asp(64);
        miss(&mut p, 8, 100);
        miss(&mut p, 8, 98);
        let d = miss(&mut p, 8, 96);
        assert_eq!(d.pages, vec![VirtPage::new(94)]);
    }

    #[test]
    fn steady_state_survives_a_single_blip() {
        let mut p = asp(64);
        miss(&mut p, 4, 10);
        miss(&mut p, 4, 12);
        assert!(!miss(&mut p, 4, 14).is_none()); // steady, stride 2
                                                 // One irregular reference: Steady -> Initial, stride kept at 2.
        assert!(miss(&mut p, 4, 100).is_none());
        // Back on the old stride relative to the new prev page: 100 -> 102
        // matches the preserved stride, returning straight to Steady.
        let d = miss(&mut p, 4, 102);
        assert_eq!(d.pages, vec![VirtPage::new(104)]);
    }

    #[test]
    fn erratic_pc_reaches_no_prediction_and_recovers() {
        let mut p = asp(64);
        miss(&mut p, 4, 0);
        miss(&mut p, 4, 7); // Transient, stride 7
        miss(&mut p, 4, 9); // mismatch -> NoPrediction, stride 2
        assert_eq!(p.entry(Pc::new(4)).unwrap().state, RptState::NoPrediction);
        miss(&mut p, 4, 11); // match -> Transient
        let d = miss(&mut p, 4, 13); // match -> Steady, prefetch 15
        assert_eq!(d.pages, vec![VirtPage::new(15)]);
    }

    #[test]
    fn separate_pcs_do_not_interfere() {
        let mut p = asp(64);
        // PC 0x40 strides by 1; PC 0x80 strides by 10; interleaved.
        miss(&mut p, 0x40, 0);
        miss(&mut p, 0x80, 1000);
        miss(&mut p, 0x40, 1);
        miss(&mut p, 0x80, 1010);
        let d1 = miss(&mut p, 0x40, 2);
        let d2 = miss(&mut p, 0x80, 1020);
        assert_eq!(d1.pages, vec![VirtPage::new(3)]);
        assert_eq!(d2.pages, vec![VirtPage::new(1030)]);
    }

    #[test]
    fn table_conflicts_lose_history() {
        // One-row table: the second PC evicts the first.
        let mut p = asp(1);
        miss(&mut p, 0x40, 0);
        miss(&mut p, 0x44, 50); // evicts PC 0x40
        assert!(p.entry(Pc::new(0x40)).is_none());
        assert_eq!(p.occupancy(), 1);
    }

    #[test]
    fn flush_drops_all_rows() {
        let mut p = asp(16);
        miss(&mut p, 4, 1);
        p.flush();
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn profile_matches_table1() {
        let p = asp(256);
        let prof = p.profile();
        assert_eq!(prof.rows, RowBudget::Rows(256));
        assert_eq!(prof.index, IndexSource::ProgramCounter);
        assert_eq!(prof.memory_ops_per_miss, 0);
        assert_eq!(prof.max_prefetches, (1, 1));
    }
}
