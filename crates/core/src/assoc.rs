//! Associativity descriptions shared by the TLB and the prediction tables.
//!
//! The paper sweeps direct-mapped (D), 2-way, 4-way and fully-associative
//! (F) organisations for both the prediction tables (Figures 7 and 9) and
//! the TLB itself; [`Associativity`] captures that axis once so every
//! structure interprets it identically.

use std::fmt;
use std::num::NonZeroUsize;

use serde::{Deserialize, Serialize};

/// How a fixed-capacity structure maps a key to a set of candidate ways.
///
/// # Examples
///
/// ```
/// use tlbsim_core::Associativity;
///
/// let a = Associativity::SetAssociative(std::num::NonZeroUsize::new(4).unwrap());
/// assert_eq!(a.ways(128), 4);
/// assert_eq!(a.sets(128).unwrap(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Associativity {
    /// One way per set: a key maps to exactly one slot ("D" in the paper).
    Direct,
    /// `n` ways per set ("2" / "4" in the paper).
    SetAssociative(NonZeroUsize),
    /// A single set containing every way ("F" in the paper).
    Full,
}

/// Error returned when an associativity does not divide a capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGeometry {
    capacity: usize,
    ways: usize,
}

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capacity {} is not divisible into sets of {} ways",
            self.capacity, self.ways
        )
    }
}

impl std::error::Error for InvalidGeometry {}

impl Associativity {
    /// Convenience constructor for `n`-way set associativity.
    ///
    /// `ways(1)` is [`Associativity::Direct`]; other values produce
    /// [`Associativity::SetAssociative`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ways_of(n: usize) -> Associativity {
        match n {
            0 => panic!("associativity of zero ways is meaningless"),
            1 => Associativity::Direct,
            n => Associativity::SetAssociative(NonZeroUsize::new(n).expect("nonzero")),
        }
    }

    /// Number of ways per set for a structure of `capacity` entries.
    pub fn ways(self, capacity: usize) -> usize {
        match self {
            Associativity::Direct => 1,
            Associativity::SetAssociative(n) => n.get().min(capacity.max(1)),
            Associativity::Full => capacity.max(1),
        }
    }

    /// Number of sets for a structure of `capacity` entries.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if the way count does not evenly divide
    /// `capacity`.
    pub fn sets(self, capacity: usize) -> Result<usize, InvalidGeometry> {
        let ways = self.ways(capacity);
        if capacity == 0 || ways == 0 || !capacity.is_multiple_of(ways) {
            return Err(InvalidGeometry { capacity, ways });
        }
        Ok(capacity / ways)
    }

    /// Short label matching the paper's figure legends: `D`, `2`, `4`, `F`.
    pub fn label(self) -> String {
        match self {
            Associativity::Direct => "D".to_owned(),
            Associativity::SetAssociative(n) => n.get().to_string(),
            Associativity::Full => "F".to_owned(),
        }
    }
}

impl fmt::Display for Associativity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ways_of_one_is_direct() {
        assert_eq!(Associativity::ways_of(1), Associativity::Direct);
        assert_eq!(Associativity::ways_of(2).ways(64), 2);
    }

    #[test]
    #[should_panic(expected = "zero ways")]
    fn ways_of_zero_panics() {
        let _ = Associativity::ways_of(0);
    }

    #[test]
    fn full_assoc_is_one_set() {
        assert_eq!(Associativity::Full.sets(128).unwrap(), 1);
        assert_eq!(Associativity::Full.ways(128), 128);
    }

    #[test]
    fn direct_mapped_is_one_way() {
        assert_eq!(Associativity::Direct.sets(256).unwrap(), 256);
        assert_eq!(Associativity::Direct.ways(256), 1);
    }

    #[test]
    fn non_dividing_geometry_is_rejected() {
        let a = Associativity::ways_of(3);
        let err = a.sets(64).unwrap_err();
        assert!(err.to_string().contains("64"));
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(Associativity::Direct.sets(0).is_err());
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(Associativity::Direct.label(), "D");
        assert_eq!(Associativity::ways_of(4).label(), "4");
        assert_eq!(Associativity::Full.label(), "F");
        assert_eq!(Associativity::Full.to_string(), "F");
    }

    #[test]
    fn set_assoc_ways_capped_by_capacity() {
        // A 2-entry structure cannot have 4 ways; it degrades gracefully.
        assert_eq!(Associativity::ways_of(4).ways(2), 2);
    }
}
