//! Tagged sequential prefetching (SP), §2.1 of the paper.
//!
//! SP exploits pure spatial sequentiality: on a TLB miss it prefetches the
//! next virtual page's translation. The *tagged* variant (the one the
//! paper uses, following Vanderwiel & Lilja) additionally re-triggers on
//! the first hit to a previously prefetched entry — in this adaptation
//! both events are TLB misses (a prefetch-buffer hit is still a miss in
//! the TLB proper), so every [`MissContext`] triggers a prefetch of
//! `page + 1`.

use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;

/// The tagged sequential prefetcher.
///
/// Stateless: the prediction is always the next sequential page. ASP
/// subsumes SP (§2.6), which is why the paper's figures omit SP; it is
/// implemented here both for completeness and as the simplest reference
/// mechanism for tests.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{MissContext, Pc, SequentialPrefetcher, TlbPrefetcher, VirtPage};
///
/// let mut sp = SequentialPrefetcher::new();
/// let d = sp.decide(&MissContext::demand(VirtPage::new(41), Pc::new(0)));
/// assert_eq!(d.pages, vec![VirtPage::new(42)]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialPrefetcher {
    _private: (),
}

impl SequentialPrefetcher {
    /// Creates a tagged sequential prefetcher.
    pub fn new() -> Self {
        SequentialPrefetcher { _private: () }
    }
}

impl TlbPrefetcher for SequentialPrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        if let Some(next) = ctx.page.next() {
            sink.push(next);
        }
    }

    fn flush(&mut self) {}

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "SP",
            rows: RowBudget::None,
            row_contents: "-",
            location: StateLocation::OnChip,
            index: IndexSource::NoTable,
            memory_ops_per_miss: 0,
            max_prefetches: (1, 1),
        }
    }

    fn name(&self) -> &'static str {
        "SP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Pc, VirtPage};

    fn miss(page: u64) -> MissContext {
        MissContext::demand(VirtPage::new(page), Pc::new(0x100))
    }

    #[test]
    fn always_prefetches_next_page() {
        let mut sp = SequentialPrefetcher::new();
        for p in [0u64, 5, 1000] {
            let d = sp.decide(&miss(p));
            assert_eq!(d.pages, vec![VirtPage::new(p + 1)]);
            assert_eq!(d.maintenance_ops, 0);
        }
    }

    #[test]
    fn triggers_on_prefetch_buffer_hits_too() {
        // The "tagged" behaviour: the first hit to a prefetched entry (a
        // PB hit) also initiates the next prefetch.
        let mut sp = SequentialPrefetcher::new();
        let ctx = MissContext {
            page: VirtPage::new(7),
            pc: Pc::new(0),
            prefetch_buffer_hit: true,
            evicted_tlb_entry: None,
        };
        assert_eq!(sp.decide(&ctx).pages, vec![VirtPage::new(8)]);
    }

    #[test]
    fn handles_address_space_end() {
        let mut sp = SequentialPrefetcher::new();
        let d = sp.decide(&miss(u64::MAX));
        assert!(d.is_none());
    }

    #[test]
    fn profile_matches_table1_shape() {
        let sp = SequentialPrefetcher::new();
        let p = sp.profile();
        assert_eq!(p.memory_ops_per_miss, 0);
        assert_eq!(p.max_prefetches, (1, 1));
    }
}
