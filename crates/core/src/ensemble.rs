//! Set-dueling ensemble prefetching (EP).
//!
//! Cache-replacement set dueling, ported to the miss stream: the
//! virtual address space is carved into 64-page *regions*, a few
//! regions are designated **leaders** for each component mechanism, and
//! everything else follows the current duel winner.
//!
//! * Every component observes every miss — all the prediction tables
//!   train on the full stream, so the loser is always warm if the duel
//!   flips.
//! * In component `i`'s leader regions, only component `i`'s candidates
//!   are issued, and the miss votes on its score: a prefetch-buffer hit
//!   (the issued prefetch covered this miss) bumps the score up, a
//!   demand miss bumps it down — a saturating counter per component.
//! * In follower regions the component with the highest score issues
//!   (ties break to the lowest index, keeping the duel deterministic).
//!
//! Scores are banked per ASID with exactly the register-file idiom the
//! distance prefetcher uses, so flush-free multiprogramming duels each
//! context independently while the component tables stay shared and
//! ASID-tagged.
//!
//! With a **single** component there is nothing to duel: leader and
//! follower regions alike issue component 0's candidates verbatim, so
//! the ensemble is bit-identical to its one component — the degenerate
//! oracle the `adaptive_oracles` integration test enforces through the
//! full simulation stack.

use crate::config::{ConfigError, PrefetcherConfig};
use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::types::Asid;

/// The set-dueling ensemble.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{PrefetcherConfig, PrefetcherKind};
///
/// let cfg = PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
/// let ep = cfg.build()?;
/// assert_eq!(ep.name(), "EP");
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
pub struct EnsemblePrefetcher {
    components: Vec<Box<dyn TlbPrefetcher>>,
    /// Current context's duel scores, one per component.
    scores: Vec<u32>,
    asid: Asid,
    /// Parked score files of non-current contexts, indexed by ASID.
    banked_scores: Vec<Vec<u32>>,
    /// Private sink each component fills in turn (reused, never grown).
    scratch: CandidateBuf,
}

impl EnsemblePrefetcher {
    /// Pages per dueling region (region = page >> 6).
    pub const REGION_PAGES_LOG2: u32 = 6;

    /// Leader-region dilution: of every `components * LEADER_STRIDE`
    /// consecutive regions, one is a leader per component and the rest
    /// follow.
    pub const LEADER_STRIDE: u64 = 8;

    /// Scores saturate at this value (a 10-bit policy counter).
    pub const SCORE_MAX: u32 = 1023;

    /// Fresh contexts start at the midpoint: no component is favoured
    /// until its leader regions earn it.
    pub const SCORE_INIT: u32 = 512;

    /// Builds an ensemble over `components` (at least one).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EmptyEnsemble`] for an empty component
    /// list.
    pub fn new(components: Vec<Box<dyn TlbPrefetcher>>) -> Result<Self, ConfigError> {
        if components.is_empty() {
            return Err(ConfigError::EmptyEnsemble);
        }
        let k = components.len();
        Ok(EnsemblePrefetcher {
            components,
            scores: vec![Self::SCORE_INIT; k],
            asid: Asid::DEFAULT,
            banked_scores: Vec::new(),
            scratch: CandidateBuf::new(),
        })
    }

    /// Builds the ensemble named by `config`'s component list, each
    /// component instantiated with `config`'s geometry knobs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an empty or nested component list, or
    /// any component's own construction error.
    pub fn from_config(config: &PrefetcherConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut components = Vec::new();
        for &kind in config.ensemble_components() {
            components.push(config.component_config(kind).build()?);
        }
        Self::new(components)
    }

    /// The duel decision for `region`: `(issuer, leader_of)` where
    /// `leader_of` is `Some(i)` iff the region is component `i`'s
    /// leader (and then `issuer == i`).
    fn duel(&self, region: u64) -> (usize, Option<usize>) {
        let k = self.components.len() as u64;
        let slot = region % (k * Self::LEADER_STRIDE);
        if slot < k {
            let i = slot as usize;
            (i, Some(i))
        } else {
            (self.winner(), None)
        }
    }

    /// Highest-scoring component, ties to the lowest index.
    fn winner(&self) -> usize {
        let mut best = 0;
        for (i, &score) in self.scores.iter().enumerate().skip(1) {
            if score > self.scores[best] {
                best = i;
            }
        }
        best
    }

    /// Current duel scores (one per component), for tests/inspection.
    pub fn scores(&self) -> &[u32] {
        &self.scores
    }

    /// Number of dueling components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }
}

impl TlbPrefetcher for EnsemblePrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let region = ctx.page.number() >> Self::REGION_PAGES_LOG2;
        let (issuer, leader_of) = self.duel(region);

        // Leader regions vote on their component's score: a prefetch
        // that covered this miss is a win, a demand miss a loss.
        if let Some(i) = leader_of {
            let score = &mut self.scores[i];
            *score = if ctx.prefetch_buffer_hit {
                (*score + 1).min(Self::SCORE_MAX)
            } else {
                score.saturating_sub(1)
            };
        }

        // Every component observes the miss; only the issuer's
        // candidates (and maintenance traffic) leave the ensemble.
        for (i, component) in self.components.iter_mut().enumerate() {
            self.scratch.clear();
            component.on_miss(ctx, &mut self.scratch);
            if i == issuer {
                for &page in self.scratch.pages() {
                    sink.push(page);
                }
                sink.add_maintenance_ops(self.scratch.maintenance_ops());
            }
        }
    }

    fn flush(&mut self) {
        for component in &mut self.components {
            component.flush();
        }
        self.scores.fill(Self::SCORE_INIT);
        for bank in &mut self.banked_scores {
            bank.fill(Self::SCORE_INIT);
        }
    }

    fn set_asid(&mut self, asid: Asid) {
        for component in &mut self.components {
            component.set_asid(asid);
        }
        if asid == self.asid {
            return;
        }
        let needed = self.asid.index().max(asid.index()) + 1;
        if self.banked_scores.len() < needed {
            self.banked_scores.resize(needed, Vec::new());
        }
        self.banked_scores[self.asid.index()] = std::mem::take(&mut self.scores);
        self.scores = std::mem::take(&mut self.banked_scores[asid.index()]);
        if self.scores.len() != self.components.len() {
            // First visit to this context: fresh midpoint scores (switch
            // time may allocate; the miss path never does).
            self.scores = vec![Self::SCORE_INIT; self.components.len()];
        }
        self.asid = asid;
    }

    fn evict_asid(&mut self, asid: Asid) {
        for component in &mut self.components {
            component.evict_asid(asid);
        }
        if asid == self.asid {
            self.scores.fill(Self::SCORE_INIT);
        } else if let Some(bank) = self.banked_scores.get_mut(asid.index()) {
            bank.fill(Self::SCORE_INIT);
        }
    }

    fn profile(&self) -> HardwareProfile {
        let mut rows = 0;
        let mut max_prefetch = 0;
        let mut memory_ops = 0;
        for component in &self.components {
            let p = component.profile();
            if let RowBudget::Rows(r) = p.rows {
                rows += r;
            }
            max_prefetch = max_prefetch.max(p.max_prefetches.1);
            memory_ops = memory_ops.max(p.memory_ops_per_miss);
        }
        HardwareProfile {
            name: "EP",
            rows: RowBudget::Rows(rows),
            row_contents: "Per-component tables + duel scores",
            location: StateLocation::OnChip,
            index: IndexSource::PageNumber,
            memory_ops_per_miss: memory_ops,
            max_prefetches: (0, max_prefetch),
        }
    }

    fn name(&self) -> &'static str {
        "EP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use crate::prefetcher::PrefetchDecision;
    use crate::types::{Pc, VirtPage};

    fn ep(kinds: &[PrefetcherKind]) -> EnsemblePrefetcher {
        EnsemblePrefetcher::from_config(&PrefetcherConfig::ensemble_of(kinds)).unwrap()
    }

    fn miss(p: &mut (impl TlbPrefetcher + ?Sized), page: u64) -> PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(0)))
    }

    fn covered(p: &mut impl TlbPrefetcher, page: u64) -> PrefetchDecision {
        p.decide(&MissContext {
            page: VirtPage::new(page),
            pc: Pc::new(0),
            prefetch_buffer_hit: true,
            evicted_tlb_entry: None,
        })
    }

    #[test]
    fn single_component_is_bit_identical_to_it() {
        let mut ensemble = ep(&[PrefetcherKind::Distance]);
        let mut bare = PrefetcherConfig::distance().build().unwrap();
        let pages: Vec<u64> = (0..300)
            .map(|i| if i % 5 == 0 { i * 977 % 4096 } else { i * 2 })
            .collect();
        for &page in &pages {
            assert_eq!(miss(&mut ensemble, page), miss(&mut *bare, page));
        }
    }

    #[test]
    fn empty_ensemble_is_rejected() {
        assert_eq!(
            EnsemblePrefetcher::new(Vec::new()).err(),
            Some(ConfigError::EmptyEnsemble)
        );
    }

    #[test]
    fn leader_mapping_is_one_region_per_component() {
        let e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        // k = 2, stride 8: of every 16 regions, region 0 leads DP,
        // region 1 leads ASP, 2..15 follow.
        assert_eq!(e.duel(0), (0, Some(0)));
        assert_eq!(e.duel(1), (1, Some(1)));
        assert_eq!(e.duel(2), (0, None)); // tie -> lowest index
        assert_eq!(e.duel(16), (0, Some(0)));
        assert_eq!(e.duel(17), (1, Some(1)));
    }

    #[test]
    fn followers_issue_the_duel_winner() {
        // DP (index 0) duels ASP (index 1). The miss stream walks a
        // stride through follower regions with a *fresh PC each miss*:
        // DP's distance table predicts, ASP's PC-keyed table never can.
        let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        let follower_base = 2u64 << EnsemblePrefetcher::REGION_PAGES_LOG2;

        // Vote ASP up in its leader region (region 1) until it wins.
        let asp_leader = 1u64 << EnsemblePrefetcher::REGION_PAGES_LOG2;
        for i in 0..8 {
            covered(&mut e, asp_leader + (i % 4));
        }
        assert!(e.scores()[1] > e.scores()[0]);

        // Teach DP the +1 chain inside the follower region.
        let mut pc = 1000u64;
        let mut walk = |e: &mut EnsemblePrefetcher, page: u64| {
            pc += 4;
            e.decide(&MissContext::demand(VirtPage::new(page), Pc::new(pc)))
        };
        for p in 0..6 {
            walk(&mut e, follower_base + p);
        }
        // ASP is winning, and with one-shot PCs it predicts nothing.
        assert!(walk(&mut e, follower_base + 6).pages.is_empty());

        // Now vote DP up past ASP in DP's leader region (region 0).
        for i in 0..20 {
            covered(&mut e, i % 4);
        }
        assert!(e.scores()[0] > e.scores()[1]);
        // Resume the follower walk: the first miss re-anchors DP's
        // distance registers after the leader-region detour, then the
        // +1 chain issues DP's prediction of the next page.
        walk(&mut e, follower_base + 7);
        let d = walk(&mut e, follower_base + 8);
        assert!(d.pages.contains(&VirtPage::new(follower_base + 9)), "{d:?}");
    }

    #[test]
    fn scores_saturate_at_both_ends() {
        let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        for _ in 0..2000 {
            covered(&mut e, 0); // DP leader region, always a win
            miss(&mut e, 64); // ASP leader region, always a loss
        }
        assert_eq!(e.scores()[0], EnsemblePrefetcher::SCORE_MAX);
        assert_eq!(e.scores()[1], 0);
    }

    #[test]
    fn follower_misses_do_not_vote() {
        let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        let before = e.scores().to_vec();
        let follower = 5u64 << EnsemblePrefetcher::REGION_PAGES_LOG2;
        for i in 0..50 {
            miss(&mut e, follower + i % 8);
            covered(&mut e, follower + i % 8);
        }
        assert_eq!(e.scores(), before.as_slice());
    }

    #[test]
    fn duel_is_deterministic() {
        let pages: Vec<u64> = (0..500).map(|i| (i * 37) % 1000).collect();
        let run = || {
            let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Markov]);
            pages.iter().map(|&p| miss(&mut e, p)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scores_are_banked_per_context() {
        let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        // Saturate DP's score downward in context 0.
        for _ in 0..600 {
            miss(&mut e, 0);
        }
        let ctx0 = e.scores().to_vec();
        assert!(ctx0[0] < EnsemblePrefetcher::SCORE_INIT);
        // A fresh context duels from the midpoint.
        e.set_asid(Asid::new(1));
        assert_eq!(
            e.scores(),
            &[
                EnsemblePrefetcher::SCORE_INIT,
                EnsemblePrefetcher::SCORE_INIT
            ]
        );
        for _ in 0..10 {
            covered(&mut e, 64);
        }
        // Switching back restores context 0's duel exactly.
        e.set_asid(Asid::DEFAULT);
        assert_eq!(e.scores(), ctx0.as_slice());
    }

    #[test]
    fn evict_asid_resets_that_contexts_duel() {
        let mut e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        for _ in 0..100 {
            miss(&mut e, 0);
        }
        e.evict_asid(Asid::DEFAULT);
        assert_eq!(
            e.scores(),
            &[
                EnsemblePrefetcher::SCORE_INIT,
                EnsemblePrefetcher::SCORE_INIT
            ]
        );
    }

    #[test]
    fn flush_resets_components_and_scores() {
        let mut e = ep(&[PrefetcherKind::Distance]);
        for page in 0..10u64 {
            miss(&mut e, page);
        }
        e.flush();
        assert_eq!(e.scores(), &[EnsemblePrefetcher::SCORE_INIT]);
        assert!(miss(&mut e, 100).is_none());
        assert!(miss(&mut e, 101).is_none());
    }

    #[test]
    fn profile_sums_component_budgets() {
        let e = ep(&[PrefetcherKind::Distance, PrefetcherKind::Stride]);
        let prof = e.profile();
        assert_eq!(prof.name, "EP");
        assert_eq!(prof.rows, RowBudget::Rows(512)); // 256 + 256
        assert_eq!(prof.max_prefetches.0, 0);
        assert_eq!(e.component_count(), 2);
    }
}
