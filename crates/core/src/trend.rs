//! Trend-vote stride prefetching (TP) — an adaptive ASP variant.
//!
//! ASP (§2.2) trusts a stride only after the last two deltas agree; a
//! single irregular reference breaks the steady state. Leap-style trend
//! detection instead keeps a sliding window of the last `w` deltas per
//! PC and predicts the delta holding a **strict majority** of the
//! window, so occasional blips are outvoted instead of resetting the
//! state machine.
//!
//! The window only votes once it is full. That warm-up choice is what
//! makes the degenerate configuration provable: with `w = 2` on a
//! monotone stream (constant stride per PC), TP's first prediction
//! lands on exactly the miss where ASP reaches *steady* — the third
//! miss by that PC — and both predict `page + stride` ever after. The
//! `adaptive_oracles` integration test pins that equivalence
//! bit-identically through the full simulation stack.
//!
//! All of TP's state lives in ASID-tagged table rows (previous page plus
//! the delta ring), so flush-free context switching is just the table's
//! tag register, exactly like ASP.

use crate::assoc::Associativity;
use crate::config::{ConfigError, PrefetcherConfig};
use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::table::PredictionTable;
use crate::types::{Distance, Pc, VirtPage};

/// One trend row: the page of this PC's previous miss plus a ring of
/// the most recent deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrendRow {
    /// Page of this PC's previous TLB miss.
    prev_page: VirtPage,
    /// Ring buffer of recent deltas; only `len` entries are live.
    deltas: [Distance; TrendStridePrefetcher::MAX_WINDOW],
    /// Live delta count (saturates at the configured window).
    len: u8,
    /// Next ring slot to overwrite once the window is full.
    head: u8,
}

impl TrendRow {
    fn new(prev_page: VirtPage) -> Self {
        TrendRow {
            prev_page,
            deltas: [Distance::ZERO; TrendStridePrefetcher::MAX_WINDOW],
            len: 0,
            head: 0,
        }
    }

    fn record(&mut self, delta: Distance, window: usize) {
        if (self.len as usize) < window {
            self.deltas[self.len as usize] = delta;
            self.len += 1;
        } else {
            self.deltas[self.head as usize] = delta;
            self.head = (self.head + 1) % window as u8;
        }
    }

    /// The delta held by a strict majority (> w/2) of a full window.
    fn majority(&self, window: usize) -> Option<Distance> {
        if (self.len as usize) < window {
            return None;
        }
        let live = &self.deltas[..window];
        for candidate in live {
            let votes = live.iter().filter(|d| *d == candidate).count();
            if votes * 2 > window {
                return Some(*candidate);
            }
        }
        None
    }
}

/// The trend-vote stride prefetcher.
///
/// # Examples
///
/// A single blip in a long stride run is outvoted rather than breaking
/// the prediction:
///
/// ```
/// use tlbsim_core::{MissContext, Pc, PrefetcherConfig, TlbPrefetcher, VirtPage};
///
/// let mut cfg = PrefetcherConfig::trend_stride();
/// cfg.window(4);
/// let mut tp = cfg.build()?;
/// let pc = Pc::new(0x40);
/// for page in [0u64, 2, 4, 6, 99, 101] {
///     tp.decide(&MissContext::demand(VirtPage::new(page), pc));
/// }
/// // Window holds [+2, +93, +2, +2]: majority +2 still predicts.
/// let d = tp.decide(&MissContext::demand(VirtPage::new(103), pc));
/// assert_eq!(d.pages, vec![VirtPage::new(105)]);
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TrendStridePrefetcher {
    table: PredictionTable<Pc, TrendRow>,
    window: usize,
}

impl TrendStridePrefetcher {
    /// Largest supported delta window (ring storage is inline per row).
    pub const MAX_WINDOW: usize = 16;

    /// Smallest meaningful window: two deltas make the minimal vote.
    pub const MIN_WINDOW: usize = 2;

    /// Creates a TP with `rows` rows organised by `assoc`, voting over a
    /// window of `window` deltas.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or a window
    /// outside `MIN_WINDOW..=MAX_WINDOW`.
    pub fn new(rows: usize, assoc: Associativity, window: usize) -> Result<Self, ConfigError> {
        if !(Self::MIN_WINDOW..=Self::MAX_WINDOW).contains(&window) {
            return Err(ConfigError::BadWindow { window });
        }
        Ok(TrendStridePrefetcher {
            table: PredictionTable::new(rows, assoc)?,
            window,
        })
    }

    /// Creates a TP from a uniform configuration (slots are ignored: one
    /// majority delta yields at most one prediction per miss).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or window.
    pub fn from_config(config: &PrefetcherConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Self::new(
            config.row_count(),
            config.associativity(),
            config.window_len(),
        )
    }

    /// The configured vote window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of occupied table rows.
    pub fn occupancy(&self) -> usize {
        self.table.len()
    }
}

impl TlbPrefetcher for TrendStridePrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let page = ctx.page;
        let window = self.window;
        match self.table.get_mut(ctx.pc) {
            None => {
                // First miss by this PC: remember the page; the window
                // starts collecting deltas from the next miss.
                self.table.insert(ctx.pc, TrendRow::new(page));
            }
            Some(row) => {
                let delta = page.distance_from(row.prev_page);
                row.record(delta, window);
                row.prev_page = page;
                if let Some(trend) = row.majority(window) {
                    if trend != Distance::ZERO {
                        if let Some(target) = page.offset(trend) {
                            sink.push(target);
                        }
                    }
                }
            }
        }
    }

    fn flush(&mut self) {
        self.table.clear();
    }

    fn set_asid(&mut self, asid: crate::types::Asid) {
        // Like ASP, every register is per-row (prev_page and the delta
        // ring live in tagged rows), so switching is just the tag.
        self.table.set_asid(asid);
    }

    fn evict_asid(&mut self, asid: crate::types::Asid) {
        self.table.evict_asid(asid);
    }

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "TP",
            rows: RowBudget::Rows(self.table.capacity()),
            row_contents: "PC Tag, Page #, Delta Window",
            location: StateLocation::OnChip,
            index: IndexSource::ProgramCounter,
            memory_ops_per_miss: 0,
            max_prefetches: (0, 1),
        }
    }

    fn name(&self) -> &'static str {
        "TP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stride::StridePrefetcher;

    fn tp(rows: usize, window: usize) -> TrendStridePrefetcher {
        TrendStridePrefetcher::new(rows, Associativity::Direct, window).unwrap()
    }

    fn miss(p: &mut impl TlbPrefetcher, pc: u64, page: u64) -> crate::PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(pc)))
    }

    #[test]
    fn window_must_fill_before_voting() {
        let mut p = tp(64, 4);
        // Misses 1..=4 cannot vote (window not yet full after 3 deltas).
        assert!(miss(&mut p, 4, 0).is_none());
        assert!(miss(&mut p, 4, 2).is_none());
        assert!(miss(&mut p, 4, 4).is_none());
        assert!(miss(&mut p, 4, 6).is_none());
        // Fifth miss: window [2,2,2,2] votes +2.
        assert_eq!(miss(&mut p, 4, 8).pages, vec![VirtPage::new(10)]);
    }

    #[test]
    fn window_two_matches_asp_on_monotone_stream() {
        // The degeneration oracle in miniature: constant stride per PC.
        let mut tp2 = tp(64, 2);
        let mut asp = StridePrefetcher::new(64, Associativity::Direct).unwrap();
        for i in 0..20u64 {
            let d_tp = miss(&mut tp2, 0x40, i * 7);
            let d_asp = miss(&mut asp, 0x40, i * 7);
            assert_eq!(d_tp, d_asp, "diverged at miss {i}");
        }
    }

    #[test]
    fn blip_is_outvoted_where_asp_resets() {
        let mut p = tp(64, 4);
        for page in [0u64, 3, 6, 9, 12] {
            miss(&mut p, 4, page);
        }
        // Irregular reference: window [3,3,3,100] still votes +3.
        let d = miss(&mut p, 4, 112);
        assert_eq!(d.pages, vec![VirtPage::new(115)]);
    }

    #[test]
    fn no_majority_means_no_prediction() {
        let mut p = tp(64, 4);
        // Deltas 1,2,3,4: no strict majority.
        for page in [0u64, 1, 3, 6, 10] {
            miss(&mut p, 4, page);
        }
        assert!(miss(&mut p, 4, 15).pages.is_empty());
    }

    #[test]
    fn zero_delta_majority_is_suppressed() {
        let mut p = tp(64, 2);
        for _ in 0..6 {
            let d = miss(&mut p, 4, 100);
            assert!(d.is_none());
        }
    }

    #[test]
    fn negative_trends_are_tracked() {
        let mut p = tp(64, 2);
        miss(&mut p, 8, 100);
        miss(&mut p, 8, 95);
        let d = miss(&mut p, 8, 90);
        assert_eq!(d.pages, vec![VirtPage::new(85)]);
    }

    #[test]
    fn separate_pcs_do_not_interfere() {
        let mut p = tp(64, 2);
        miss(&mut p, 0x40, 0);
        miss(&mut p, 0x80, 1000);
        miss(&mut p, 0x40, 1);
        miss(&mut p, 0x80, 1010);
        assert_eq!(miss(&mut p, 0x40, 2).pages, vec![VirtPage::new(3)]);
        assert_eq!(miss(&mut p, 0x80, 1020).pages, vec![VirtPage::new(1030)]);
    }

    #[test]
    fn ring_evicts_oldest_delta() {
        let mut p = tp(64, 2);
        // Establish +5, then shift to +9: after two +9 deltas the old
        // trend is fully evicted and the new one votes.
        for page in [0u64, 5, 10] {
            miss(&mut p, 4, page);
        }
        assert!(miss(&mut p, 4, 19).pages.is_empty()); // window [5,9]
        let d = miss(&mut p, 4, 28); // window [9,9]
        assert_eq!(d.pages, vec![VirtPage::new(37)]);
    }

    #[test]
    fn window_bounds_are_enforced() {
        assert!(matches!(
            TrendStridePrefetcher::new(64, Associativity::Direct, 1),
            Err(ConfigError::BadWindow { window: 1 })
        ));
        assert!(matches!(
            TrendStridePrefetcher::new(64, Associativity::Direct, 17),
            Err(ConfigError::BadWindow { window: 17 })
        ));
        assert!(TrendStridePrefetcher::new(64, Associativity::Direct, 16).is_ok());
    }

    #[test]
    fn flush_drops_all_rows() {
        let mut p = tp(16, 2);
        miss(&mut p, 4, 1);
        p.flush();
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn contexts_keep_separate_rows() {
        let mut p = TrendStridePrefetcher::new(64, Associativity::Full, 2).unwrap();
        miss(&mut p, 4, 0);
        miss(&mut p, 4, 10);
        miss(&mut p, 4, 20);
        p.set_asid(crate::types::Asid::new(1));
        // Fresh context: same PC has no row, no prediction.
        assert!(miss(&mut p, 4, 500).is_none());
        assert!(miss(&mut p, 4, 503).is_none());
        assert_eq!(miss(&mut p, 4, 506).pages, vec![VirtPage::new(509)]);
        p.set_asid(crate::types::Asid::DEFAULT);
        // Original context resumes its +10 trend.
        assert_eq!(miss(&mut p, 4, 30).pages, vec![VirtPage::new(40)]);
    }

    #[test]
    fn profile_names_the_window_machine() {
        let p = tp(256, 8);
        let prof = p.profile();
        assert_eq!(prof.rows, RowBudget::Rows(256));
        assert_eq!(prof.index, IndexSource::ProgramCounter);
        assert_eq!(prof.max_prefetches, (0, 1));
        assert_eq!(p.window(), 8);
    }
}
