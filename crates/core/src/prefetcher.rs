//! The common interface every TLB prefetching mechanism implements.
//!
//! Following the paper's uniform adaptation (§2), prefetchers observe only
//! the *miss stream* coming out of the TLB: the simulation engine calls
//! [`TlbPrefetcher::on_miss`] once per TLB miss — whether the translation
//! was then found in the prefetch buffer or demand-fetched — passing a
//! reusable [`CandidateBuf`] sink that the mechanism fills with the pages
//! it wants brought into the prefetch buffer, plus the number of extra
//! memory operations spent maintaining prediction state (zero for the
//! on-chip schemes, up to four pointer updates for recency prefetching).
//! The sink-based shape keeps the per-miss path free of heap allocation;
//! the allocating [`TlbPrefetcher::decide`] wrapper exists for tests and
//! examples that want an owned [`PrefetchDecision`].

use std::fmt;

use crate::sink::CandidateBuf;
use crate::types::{Asid, Pc, VirtPage};

/// Everything a mechanism may inspect about one TLB miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissContext {
    /// The virtual page whose translation missed in the TLB.
    pub page: VirtPage,
    /// PC of the instruction that caused the miss (used by ASP).
    pub pc: Pc,
    /// `true` if the translation was found in the prefetch buffer (the
    /// miss still appears in the miss stream; this flag is what makes
    /// tagged sequential prefetching's "first hit to a prefetched entry"
    /// trigger visible).
    pub prefetch_buffer_hit: bool,
    /// The translation evicted from the TLB by this fill, if the TLB was
    /// full. Recency prefetching pushes this entry onto its LRU stack.
    pub evicted_tlb_entry: Option<VirtPage>,
}

impl MissContext {
    /// Convenience constructor for a demand miss with no eviction.
    pub fn demand(page: VirtPage, pc: Pc) -> Self {
        MissContext {
            page,
            pc,
            prefetch_buffer_hit: false,
            evicted_tlb_entry: None,
        }
    }
}

/// An owned snapshot of what a mechanism decided to do about one miss.
///
/// This is the **convenience** shape, produced by
/// [`TlbPrefetcher::decide`] or [`CandidateBuf::take_decision`]: it heap
/// allocates, so tests and examples use it freely but the simulation
/// engines never touch it — their per-miss loop stays on the
/// [`CandidateBuf`] sink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchDecision {
    /// Pages to bring into the prefetch buffer, in priority order.
    ///
    /// The engine filters out pages already resident in the TLB or the
    /// prefetch buffer; mechanisms need not (and the hardware could not
    /// cheaply) deduplicate against those structures.
    pub pages: Vec<VirtPage>,
    /// Memory operations spent maintaining prediction state, *excluding*
    /// the page-table reads that fetch the prefetched entries themselves.
    /// Only recency prefetching is non-zero here (its LRU-stack pointers
    /// live in the page table).
    pub maintenance_ops: u32,
}

impl PrefetchDecision {
    /// A decision that prefetches nothing and touches no memory.
    pub fn none() -> Self {
        PrefetchDecision::default()
    }

    /// A decision prefetching the given pages with no maintenance traffic.
    pub fn pages(pages: Vec<VirtPage>) -> Self {
        PrefetchDecision {
            pages,
            maintenance_ops: 0,
        }
    }

    /// Returns `true` if nothing is prefetched and no memory is touched.
    pub fn is_none(&self) -> bool {
        self.pages.is_empty() && self.maintenance_ops == 0
    }
}

/// Where a mechanism's prediction state lives (Table 1, "Where is the
/// table?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateLocation {
    /// Dedicated on-chip storage (ASP, MP, DP).
    OnChip,
    /// Piggybacked on the page table in main memory (RP).
    InMemory,
}

impl fmt::Display for StateLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateLocation::OnChip => f.write_str("On-Chip"),
            StateLocation::InMemory => f.write_str("In Memory"),
        }
    }
}

/// What a mechanism indexes its prediction state by (Table 1, "How is the
/// table indexed?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexSource {
    /// Program counter (ASP).
    ProgramCounter,
    /// Missed virtual page number (MP, RP).
    PageNumber,
    /// Distance between the last two misses (DP).
    Distance,
    /// No table at all (sequential prefetching).
    NoTable,
}

impl fmt::Display for IndexSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexSource::ProgramCounter => f.write_str("PC"),
            IndexSource::PageNumber => f.write_str("Page #"),
            IndexSource::Distance => f.write_str("Distance"),
            IndexSource::NoTable => f.write_str("-"),
        }
    }
}

/// A row of the paper's Table 1: the hardware budget of one mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareProfile {
    /// Mechanism name as used in the paper.
    pub name: &'static str,
    /// "How many rows?" — `r` for the table schemes, the page-table entry
    /// count for RP, none for SP.
    pub rows: RowBudget,
    /// "What are the contents of a row?"
    pub row_contents: &'static str,
    /// "Where is the table?"
    pub location: StateLocation,
    /// "How is the table indexed?"
    pub index: IndexSource,
    /// "How many memory system operations per miss (excluding
    /// prefetching)?" — worst case.
    pub memory_ops_per_miss: u32,
    /// "How many prefetches can be initiated?" — inclusive range.
    pub max_prefetches: (u32, u32),
}

/// The row budget of a mechanism's prediction state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBudget {
    /// A configured number of on-chip rows.
    Rows(usize),
    /// One entry per page-table entry.
    PageTableEntries,
    /// No table.
    None,
}

impl fmt::Display for RowBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowBudget::Rows(r) => write!(f, "{r}"),
            RowBudget::PageTableEntries => f.write_str("No. of PTEs"),
            RowBudget::None => f.write_str("-"),
        }
    }
}

/// A TLB prefetching mechanism driven by the TLB miss stream.
///
/// Implementations are deterministic state machines: the same miss stream
/// always produces the same prefetch decisions, which the test suite
/// relies on heavily.
///
/// The hot entry point is [`on_miss`](Self::on_miss): the caller owns a
/// reusable [`CandidateBuf`] and the mechanism writes its candidates
/// straight into it — no allocation, no intermediate collection. The
/// allocating [`decide`](Self::decide) wrapper trades that for the
/// ergonomic owned [`PrefetchDecision`] used throughout the unit tests.
///
/// # Examples
///
/// Sink-based (the engine loop's shape):
///
/// ```
/// use tlbsim_core::{
///     CandidateBuf, DistancePrefetcher, MissContext, Pc, PrefetcherConfig, TlbPrefetcher,
///     VirtPage,
/// };
///
/// let mut dp = DistancePrefetcher::from_config(&PrefetcherConfig::distance())?;
/// let mut sink = CandidateBuf::new();
/// // Teach it that +1 is followed by +1, then watch it predict.
/// for n in [10u64, 11, 12] {
///     sink.clear();
///     dp.on_miss(&MissContext::demand(VirtPage::new(n), Pc::new(0x40)), &mut sink);
/// }
/// sink.clear();
/// dp.on_miss(&MissContext::demand(VirtPage::new(13), Pc::new(0x40)), &mut sink);
/// assert!(sink.pages().contains(&VirtPage::new(14)));
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
///
/// Owned-decision convenience:
///
/// ```
/// use tlbsim_core::{MissContext, Pc, PrefetcherConfig, TlbPrefetcher, VirtPage};
///
/// let mut dp = PrefetcherConfig::distance().build()?;
/// for n in [10u64, 11, 12] {
///     dp.decide(&MissContext::demand(VirtPage::new(n), Pc::new(0x40)));
/// }
/// let decision = dp.decide(&MissContext::demand(VirtPage::new(13), Pc::new(0x40)));
/// assert!(decision.pages.contains(&VirtPage::new(14)));
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
pub trait TlbPrefetcher {
    /// Reacts to one TLB miss, pushing the pages to prefetch (and any
    /// maintenance traffic) into `sink`.
    ///
    /// The caller provides `sink` already cleared; candidates are pushed
    /// in priority order. This path must not allocate.
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf);

    /// Allocating convenience wrapper around [`on_miss`](Self::on_miss)
    /// for tests and examples: runs the mechanism against a fresh sink
    /// and returns the owned decision.
    fn decide(&mut self, ctx: &MissContext) -> PrefetchDecision {
        let mut sink = CandidateBuf::new();
        self.on_miss(ctx, &mut sink);
        sink.take_decision()
    }

    /// Drops all learned state (e.g. on a flushing context switch).
    /// Geometry is preserved.
    fn flush(&mut self);

    /// Switches the mechanism to context `asid` without dropping state
    /// (flush-free context switch): prediction-table rows are tagged and
    /// any per-context registers (previous miss, distance registers, the
    /// recency stack) are banked and swapped. Stateless mechanisms
    /// ignore this.
    ///
    /// May allocate (growing the register bank for a new context) —
    /// switch time is not the zero-alloc miss path.
    fn set_asid(&mut self, _asid: Asid) {}

    /// Drops every piece of state learned under `asid` — the targeted
    /// analogue of [`flush`](Self::flush), used when an ASID is recycled
    /// for a new context. With only one context ever used, this is
    /// exactly `flush`.
    fn evict_asid(&mut self, _asid: Asid) {}

    /// The mechanism's hardware budget (its row of the paper's Table 1).
    fn profile(&self) -> HardwareProfile;

    /// Short mechanism name ("SP", "ASP", "MP", "RP", "DP", "none").
    fn name(&self) -> &'static str;
}

/// The no-prefetching baseline used to normalise execution cycles.
///
/// It never predicts anything, costs nothing, and exists so that engine
/// code can treat "no prefetching" uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl NullPrefetcher {
    /// Creates the baseline prefetcher.
    pub fn new() -> Self {
        NullPrefetcher
    }
}

impl TlbPrefetcher for NullPrefetcher {
    fn on_miss(&mut self, _ctx: &MissContext, _sink: &mut CandidateBuf) {}

    fn flush(&mut self) {}

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "none",
            rows: RowBudget::None,
            row_contents: "-",
            location: StateLocation::OnChip,
            index: IndexSource::NoTable,
            memory_ops_per_miss: 0,
            max_prefetches: (0, 0),
        }
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_does_nothing() {
        let mut p = NullPrefetcher::new();
        let d = p.decide(&MissContext::demand(VirtPage::new(1), Pc::new(2)));
        assert!(d.is_none());
        assert_eq!(p.name(), "none");
        p.flush();
    }

    #[test]
    fn decide_matches_sink_contents() {
        let mut p = NullPrefetcher::new();
        let ctx = MissContext::demand(VirtPage::new(1), Pc::new(2));
        let mut sink = CandidateBuf::new();
        p.on_miss(&ctx, &mut sink);
        assert_eq!(p.decide(&ctx).pages, sink.pages().to_vec());
    }

    #[test]
    fn decision_constructors() {
        assert!(PrefetchDecision::none().is_none());
        let d = PrefetchDecision::pages(vec![VirtPage::new(9)]);
        assert!(!d.is_none());
        assert_eq!(d.maintenance_ops, 0);
    }

    #[test]
    fn miss_context_demand_defaults() {
        let ctx = MissContext::demand(VirtPage::new(5), Pc::new(6));
        assert!(!ctx.prefetch_buffer_hit);
        assert!(ctx.evicted_tlb_entry.is_none());
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(StateLocation::OnChip.to_string(), "On-Chip");
        assert_eq!(StateLocation::InMemory.to_string(), "In Memory");
        assert_eq!(IndexSource::Distance.to_string(), "Distance");
        assert_eq!(RowBudget::Rows(256).to_string(), "256");
        assert_eq!(RowBudget::PageTableEntries.to_string(), "No. of PTEs");
    }
}
