//! Recency-based prefetching (RP), §2.4 of the paper.
//!
//! RP (Saulsbury, Dahlgren & Stenstrom) is the only prior mechanism
//! proposed specifically for TLBs. It threads an LRU stack through the
//! page table: when the TLB evicts an entry, that entry is pushed on top
//! of the stack; when a page misses, the pages adjacent to it *in the
//! stack* — pages referenced at around the same time in the past — are
//! prefetched, and the missing page is unlinked (it is now TLB-resident).
//!
//! Because the prev/next pointers live in page-table entries in main
//! memory, every miss costs up to four extra memory operations of pointer
//! maintenance before the two prefetch fetches can even start — the
//! traffic that Table 3 shows erasing RP's accuracy advantage.

use std::collections::HashMap;

use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::types::{Asid, VirtPage};

#[derive(Debug, Clone, Copy, Default)]
struct StackNode {
    /// Neighbour toward the top of the stack (more recently evicted).
    above: Option<VirtPage>,
    /// Neighbour toward the bottom of the stack (less recently evicted).
    below: Option<VirtPage>,
}

/// One context's parked LRU stack. RP's pointers live in page-table
/// entries, which are per address space — so the whole stack banks per
/// ASID, not per row.
#[derive(Debug, Clone, Default)]
struct RecencyBank {
    nodes: HashMap<VirtPage, StackNode>,
    top: Option<VirtPage>,
}

/// The recency prefetcher.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{MissContext, Pc, RecencyPrefetcher, TlbPrefetcher, VirtPage};
///
/// let mut rp = RecencyPrefetcher::new();
/// // Pages 1 and 2 get evicted from the TLB in that order…
/// rp.decide(&MissContext {
///     page: VirtPage::new(50),
///     pc: Pc::new(0),
///     prefetch_buffer_hit: false,
///     evicted_tlb_entry: Some(VirtPage::new(1)),
/// });
/// rp.decide(&MissContext {
///     page: VirtPage::new(51),
///     pc: Pc::new(0),
///     prefetch_buffer_hit: false,
///     evicted_tlb_entry: Some(VirtPage::new(2)),
/// });
/// // …so when page 2 misses again, its stack neighbour page 1 is
/// // prefetched.
/// let d = rp.decide(&MissContext {
///     page: VirtPage::new(2),
///     pc: Pc::new(0),
///     prefetch_buffer_hit: false,
///     evicted_tlb_entry: Some(VirtPage::new(3)),
/// });
/// assert!(d.pages.contains(&VirtPage::new(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecencyPrefetcher {
    nodes: HashMap<VirtPage, StackNode>,
    top: Option<VirtPage>,
    asid: Asid,
    // Parked stacks of non-current contexts, indexed by ASID; the
    // current context's slot holds an empty (checked-out) bank. Swapped
    // wholesale at switch time — the miss path never indexes it.
    banks: Vec<RecencyBank>,
}

impl RecencyPrefetcher {
    /// Creates a recency prefetcher with an empty stack.
    pub fn new() -> Self {
        RecencyPrefetcher::default()
    }

    /// Number of pages currently on the LRU stack (equals the extra
    /// page-table footprint RP is paying for).
    pub fn stack_len(&self) -> usize {
        self.nodes.len()
    }

    /// Allocating snapshot of the stack from top (most recently evicted)
    /// to bottom — debug/test introspection, never called on the miss
    /// path.
    pub fn stack_snapshot(&self) -> Vec<VirtPage> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut cur = self.top;
        while let Some(page) = cur {
            out.push(page);
            cur = self.nodes.get(&page).and_then(|n| n.below);
        }
        out
    }

    /// Unlinks `page` from the stack, returning the number of pointer
    /// writes performed.
    fn unlink(&mut self, page: VirtPage) -> u32 {
        let Some(node) = self.nodes.remove(&page) else {
            return 0;
        };
        let mut writes = 0;
        if let Some(above) = node.above {
            if let Some(n) = self.nodes.get_mut(&above) {
                n.below = node.below;
                writes += 1;
            }
        } else {
            // Page was the top.
            self.top = node.below;
        }
        if let Some(below) = node.below {
            if let Some(n) = self.nodes.get_mut(&below) {
                n.above = node.above;
                writes += 1;
            }
        }
        writes
    }

    /// Pushes `page` on top of the stack, returning pointer writes.
    fn push_top(&mut self, page: VirtPage) -> u32 {
        let mut writes = 1; // writing the new node's pointers
        let old_top = self.top;
        if let Some(top) = old_top {
            if let Some(n) = self.nodes.get_mut(&top) {
                n.above = Some(page);
                writes += 1;
            }
        }
        self.nodes.insert(
            page,
            StackNode {
                above: None,
                below: old_top,
            },
        );
        self.top = Some(page);
        writes
    }
}

impl TlbPrefetcher for RecencyPrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let mut ops = 0;

        // Neighbours *before* unlinking: the pages evicted just before
        // and just after the missing page was evicted.
        if let Some(node) = self.nodes.get(&ctx.page) {
            if let Some(above) = node.above {
                sink.push(above);
            }
            if let Some(below) = node.below {
                sink.push(below);
            }
        }

        // The missing page returns to the TLB, so it leaves the stack.
        ops += self.unlink(ctx.page);

        // The evicted translation becomes the most recently evicted.
        if let Some(evicted) = ctx.evicted_tlb_entry {
            // Defensive: a flushed-then-refilled TLB could evict a page
            // that still has a stale stack node.
            ops += self.unlink(evicted);
            ops += self.push_top(evicted);
        }

        sink.add_maintenance_ops(ops);
    }

    fn flush(&mut self) {
        self.nodes.clear();
        self.top = None;
        for bank in &mut self.banks {
            bank.nodes.clear();
            bank.top = None;
        }
    }

    fn set_asid(&mut self, asid: Asid) {
        if asid == self.asid {
            return;
        }
        let needed = self.asid.index().max(asid.index()) + 1;
        if self.banks.len() < needed {
            self.banks.resize_with(needed, RecencyBank::default);
        }
        // Park the live stack, then check out the new context's.
        let old = self.asid.index();
        std::mem::swap(&mut self.banks[old].nodes, &mut self.nodes);
        self.banks[old].top = self.top;
        let new = asid.index();
        std::mem::swap(&mut self.banks[new].nodes, &mut self.nodes);
        self.top = self.banks[new].top.take();
        self.asid = asid;
    }

    fn evict_asid(&mut self, asid: Asid) {
        if asid == self.asid {
            self.nodes.clear();
            self.top = None;
        } else if let Some(bank) = self.banks.get_mut(asid.index()) {
            bank.nodes.clear();
            bank.top = None;
        }
    }

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "RP",
            rows: RowBudget::PageTableEntries,
            row_contents: "next, prev pointers",
            location: StateLocation::InMemory,
            index: IndexSource::PageNumber,
            memory_ops_per_miss: 4,
            max_prefetches: (1, 3),
        }
    }

    fn name(&self) -> &'static str {
        "RP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Pc;

    fn miss(p: &mut RecencyPrefetcher, page: u64, evicted: Option<u64>) -> crate::PrefetchDecision {
        p.decide(&MissContext {
            page: VirtPage::new(page),
            pc: Pc::new(0),
            prefetch_buffer_hit: false,
            evicted_tlb_entry: evicted.map(VirtPage::new),
        })
    }

    #[test]
    fn cold_misses_prefetch_nothing() {
        let mut p = RecencyPrefetcher::new();
        let d = miss(&mut p, 1, None);
        assert!(d.pages.is_empty());
        assert_eq!(d.maintenance_ops, 0);
    }

    #[test]
    fn evictions_build_the_stack_top_down() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        miss(&mut p, 101, Some(2));
        miss(&mut p, 102, Some(3));
        assert_eq!(
            p.stack_snapshot(),
            vec![VirtPage::new(3), VirtPage::new(2), VirtPage::new(1)]
        );
    }

    #[test]
    fn middle_element_prefetches_both_neighbours() {
        let mut p = RecencyPrefetcher::new();
        for e in 1..=3u64 {
            miss(&mut p, 100 + e, Some(e));
        }
        // Stack (top->bottom): 3, 2, 1. Missing page 2 prefetches 3 and 1.
        let d = miss(&mut p, 2, Some(4));
        assert!(d.pages.contains(&VirtPage::new(3)));
        assert!(d.pages.contains(&VirtPage::new(1)));
        assert_eq!(d.pages.len(), 2);
        // Page 2 left the stack; 4 joined on top.
        assert_eq!(
            p.stack_snapshot(),
            vec![VirtPage::new(4), VirtPage::new(3), VirtPage::new(1)]
        );
    }

    #[test]
    fn top_element_prefetches_one_neighbour() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        miss(&mut p, 101, Some(2));
        // Stack: 2, 1. Missing page 2 (the top) has only a below-neighbour.
        let d = miss(&mut p, 2, None);
        assert_eq!(d.pages, vec![VirtPage::new(1)]);
        assert_eq!(p.stack_snapshot(), vec![VirtPage::new(1)]);
    }

    #[test]
    fn maintenance_ops_peak_at_four() {
        let mut p = RecencyPrefetcher::new();
        for e in 1..=5u64 {
            miss(&mut p, 100 + e, Some(e));
        }
        // Unlink from the middle (2 writes) + push eviction (2 writes).
        let d = miss(&mut p, 3, Some(6));
        assert_eq!(d.maintenance_ops, 4);
    }

    #[test]
    fn recency_neighbourhood_follows_eviction_order_not_address_order() {
        let mut p = RecencyPrefetcher::new();
        // Evict pages in scrambled address order.
        miss(&mut p, 200, Some(50));
        miss(&mut p, 201, Some(7));
        miss(&mut p, 202, Some(9000));
        // Stack: 9000, 7, 50. Page 7's neighbours are 9000 and 50 —
        // nothing to do with addresses 6 or 8.
        let d = miss(&mut p, 7, None);
        assert!(d.pages.contains(&VirtPage::new(9000)));
        assert!(d.pages.contains(&VirtPage::new(50)));
    }

    #[test]
    fn re_evicted_page_moves_to_top() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        miss(&mut p, 101, Some(2));
        // Page 1 is evicted again without having missed (defensive path).
        miss(&mut p, 102, Some(1));
        assert_eq!(p.stack_snapshot(), vec![VirtPage::new(1), VirtPage::new(2)]);
    }

    #[test]
    fn flush_empties_the_stack() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        p.flush();
        assert_eq!(p.stack_len(), 0);
        assert!(p.stack_snapshot().is_empty());
    }

    #[test]
    fn stacks_are_banked_per_context() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        miss(&mut p, 101, Some(2));
        p.set_asid(Asid::new(1));
        // The new context starts with an empty stack.
        assert_eq!(p.stack_len(), 0);
        miss(&mut p, 200, Some(70));
        miss(&mut p, 201, Some(71));
        assert_eq!(
            p.stack_snapshot(),
            vec![VirtPage::new(71), VirtPage::new(70)]
        );
        // Switching back restores context 0's stack untouched.
        p.set_asid(Asid::DEFAULT);
        assert_eq!(p.stack_snapshot(), vec![VirtPage::new(2), VirtPage::new(1)]);
        let d = miss(&mut p, 2, None);
        assert_eq!(d.pages, vec![VirtPage::new(1)]);
    }

    #[test]
    fn evict_asid_drops_one_stack() {
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        p.set_asid(Asid::new(1));
        miss(&mut p, 200, Some(70));
        p.evict_asid(Asid::DEFAULT);
        p.evict_asid(Asid::new(1)); // current context
        assert_eq!(p.stack_len(), 0);
        p.set_asid(Asid::DEFAULT);
        assert_eq!(p.stack_len(), 0);
    }

    #[test]
    fn profile_matches_table1() {
        let p = RecencyPrefetcher::new();
        let prof = p.profile();
        assert_eq!(prof.rows, RowBudget::PageTableEntries);
        assert_eq!(prof.location, StateLocation::InMemory);
        assert_eq!(prof.memory_ops_per_miss, 4);
    }

    #[test]
    fn stack_reflects_working_set_churn() {
        // A page that re-misses leaves the stack, keeping it bounded by
        // the set of TLB-evicted-but-unreferenced pages.
        let mut p = RecencyPrefetcher::new();
        miss(&mut p, 100, Some(1));
        miss(&mut p, 1, Some(100));
        assert_eq!(p.stack_snapshot(), vec![VirtPage::new(100)]);
        assert_eq!(p.stack_len(), 1);
    }
}
