//! Distance prefetching (DP), §2.5 — the paper's contribution.
//!
//! DP keeps a prediction table indexed by the *distance* between the last
//! two TLB misses; each row's `s` slots hold the distances that followed
//! that distance in the past. On a miss (Figure 6):
//!
//! 1. compute the current distance (missed page − previous missed page);
//! 2. index the table by that distance;
//! 3. on a hit, prefetch `current page + predicted distance` for each slot;
//! 4. store the current distance into the *previous* distance's slots;
//! 5. remember the current distance and page for the next miss.
//!
//! The payoff is compression: a sequential scan of any length is one row
//! ("+1 follows +1"); the interleaved two-stream pattern 1, 2, 4, 5, 7, 8
//! is two rows ("+1 follows +2", "+2 follows +1") where Markov prefetching
//! would need a row per page. When strides change, the changes themselves
//! repeat and the table captures the change pattern — the behaviour class
//! (d) of §1 that neither stride- nor address-history-based schemes track.

use crate::assoc::Associativity;
use crate::config::{ConfigError, PrefetcherConfig};
use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::slots::SlotList;
use crate::table::PredictionTable;
use crate::types::{Asid, Distance, Pc, VirtPage};

/// How the distance table is indexed.
///
/// The paper indexes by the distance alone; §2.5 and §4 float indexing
/// by PC + distance and by "a set of consecutive distances" as future
/// work. Both are implemented as optional modes and evaluated in the
/// ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IndexMode {
    DistanceOnly,
    PcQualified,
    /// Key on the pair (previous distance, current distance): slower to
    /// learn (each context must recur) but disambiguates hub distances
    /// whose successor fan-out exceeds `s`.
    DistancePair,
}

/// Key type for the distance table: the observed distance, optionally
/// folded with the missing instruction's PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DistanceKey {
    distance: Distance,
    pc_fold: u64,
}

impl crate::table::TableKey for DistanceKey {
    fn index_value(self) -> u64 {
        (self.distance.value() as u64) ^ self.pc_fold
    }
}

/// The per-context register file of the distance predictor: everything
/// Figure 6 carries between misses.
#[derive(Debug, Clone, Copy, Default)]
struct DistanceRegs {
    prev_page: Option<VirtPage>,
    prev_distance: Option<Distance>,
    /// The full key used at the previous miss — where the current
    /// distance gets recorded as a follower (Figure 6, step 4).
    prev_key: Option<DistanceKey>,
}

/// The distance prefetcher.
///
/// # Examples
///
/// Strided behaviour is captured in a single row:
///
/// ```
/// use tlbsim_core::{DistancePrefetcher, MissContext, Pc, PrefetcherConfig, TlbPrefetcher, VirtPage};
///
/// let mut dp = DistancePrefetcher::from_config(&PrefetcherConfig::distance())?;
/// let m = |p: u64| MissContext::demand(VirtPage::new(p), Pc::new(0));
/// dp.decide(&m(0));
/// dp.decide(&m(1)); // distance +1 observed
/// dp.decide(&m(2)); // "+1 follows +1" learned; predicts page 3
/// let d = dp.decide(&m(3));
/// assert_eq!(d.pages, vec![VirtPage::new(4)]);
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistancePrefetcher {
    table: PredictionTable<DistanceKey, SlotList<Distance>>,
    slots: usize,
    mode: IndexMode,
    regs: DistanceRegs,
    asid: Asid,
    // Parked register files of non-current contexts, indexed by ASID.
    // Grown only at switch time, keeping the miss path allocation-free.
    banked_regs: Vec<DistanceRegs>,
}

impl DistancePrefetcher {
    /// Creates a DP with `rows` rows of `slots` distance slots each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or zero slots.
    pub fn new(rows: usize, slots: usize, assoc: Associativity) -> Result<Self, ConfigError> {
        if slots == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        if slots > SlotList::<Distance>::MAX_CAPACITY {
            return Err(ConfigError::TooManySlots { slots });
        }
        Ok(DistancePrefetcher {
            table: PredictionTable::new(rows, assoc)?,
            slots,
            mode: IndexMode::DistanceOnly,
            regs: DistanceRegs::default(),
            asid: Asid::DEFAULT,
            banked_regs: Vec::new(),
        })
    }

    /// Creates a DP from a uniform configuration, honouring
    /// [`PrefetcherConfig::pc_qualified`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or zero slots.
    pub fn from_config(config: &PrefetcherConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut dp = Self::new(
            config.row_count(),
            config.slot_count(),
            config.associativity(),
        )?;
        if config.is_pc_qualified() {
            dp.mode = IndexMode::PcQualified;
        }
        if config.is_pair_indexed() {
            dp.mode = IndexMode::DistancePair;
        }
        Ok(dp)
    }

    /// Switches to pair indexing: the table key becomes the pair of the
    /// two most recent distances (§2.5's "set of consecutive distances"
    /// future-work variant).
    pub fn pair_indexed(mut self) -> Self {
        self.mode = IndexMode::DistancePair;
        self
    }

    fn fold_pc(&self, pc: Pc) -> u64 {
        match self.mode {
            IndexMode::DistanceOnly | IndexMode::DistancePair => 0,
            // Fold the word-aligned PC into the tag; a multiplicative
            // shuffle spreads loop bodies across sets.
            IndexMode::PcQualified => (pc.raw() >> 2).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The context folded into the key alongside the current distance:
    /// the PC hash in PC-qualified mode, the previous distance in pair
    /// mode, zero otherwise.
    fn context_fold(&self, pc_fold: u64) -> u64 {
        match self.mode {
            IndexMode::DistanceOnly => 0,
            IndexMode::PcQualified => pc_fold,
            IndexMode::DistancePair => self
                .regs
                .prev_distance
                .map(|d| (d.value() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .unwrap_or(0),
        }
    }

    /// Number of occupied table rows.
    pub fn occupancy(&self) -> usize {
        self.table.len()
    }

    /// Allocating snapshot of the distances predicted to follow
    /// `distance` (MRU first), in distance-only indexing mode —
    /// debug/test introspection, never called on the miss path.
    pub fn followers_snapshot(&self, distance: Distance) -> Vec<Distance> {
        self.table
            .get(DistanceKey {
                distance,
                pc_fold: 0,
            })
            .map(|row| row.iter().copied().collect())
            .unwrap_or_default()
    }
}

impl TlbPrefetcher for DistancePrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let page = ctx.page;
        let pc_fold = self.fold_pc(ctx.pc);

        let Some(prev_page) = self.regs.prev_page else {
            // Very first miss: no distance to compute yet (step 1 needs a
            // previous address).
            self.regs.prev_page = Some(page);
            return;
        };

        // Step 1: the current distance, keyed with whatever extra
        // context the index mode folds in (PC or previous distance).
        let distance = page.distance_from(prev_page);
        let key = DistanceKey {
            distance,
            pc_fold: self.context_fold(pc_fold),
        };

        // Steps 2-3: a table hit yields predicted distances, applied to
        // the *current* page and pushed straight into the caller's sink.
        if let Some(row) = self.table.get_mut(key) {
            for d in row.iter() {
                if let Some(target) = page.offset(*d) {
                    if target != page {
                        sink.push(target);
                    }
                }
            }
        }

        // Step 4: the current distance becomes a predicted follower of
        // the previous miss's key.
        if let Some(prev_key) = self.regs.prev_key {
            let slots = self.slots;
            self.table
                .get_or_insert_with(prev_key, || SlotList::new(slots))
                .insert(distance);
        }

        // Step 5: overwrite the previous distance (and page) with the
        // current one.
        self.regs.prev_distance = Some(distance);
        self.regs.prev_page = Some(page);
        self.regs.prev_key = Some(key);
    }

    fn flush(&mut self) {
        self.table.clear();
        self.regs = DistanceRegs::default();
        self.banked_regs.fill(DistanceRegs::default());
    }

    fn set_asid(&mut self, asid: Asid) {
        self.table.set_asid(asid);
        if asid == self.asid {
            return;
        }
        let needed = self.asid.index().max(asid.index()) + 1;
        if self.banked_regs.len() < needed {
            self.banked_regs.resize(needed, DistanceRegs::default());
        }
        self.banked_regs[self.asid.index()] = self.regs;
        self.regs = std::mem::take(&mut self.banked_regs[asid.index()]);
        self.asid = asid;
    }

    fn evict_asid(&mut self, asid: Asid) {
        self.table.evict_asid(asid);
        if asid == self.asid {
            self.regs = DistanceRegs::default();
        } else if let Some(slot) = self.banked_regs.get_mut(asid.index()) {
            *slot = DistanceRegs::default();
        }
    }

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "DP",
            rows: RowBudget::Rows(self.table.capacity()),
            row_contents: "Distance Tag, s Prediction Distances",
            location: StateLocation::OnChip,
            index: IndexSource::Distance,
            memory_ops_per_miss: 0,
            max_prefetches: (0, self.slots as u32),
        }
    }

    fn name(&self) -> &'static str {
        "DP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp(rows: usize, slots: usize) -> DistancePrefetcher {
        DistancePrefetcher::new(rows, slots, Associativity::Direct).unwrap()
    }

    fn miss(p: &mut DistancePrefetcher, page: u64) -> crate::PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(0)))
    }

    #[test]
    fn first_two_misses_predict_nothing() {
        let mut p = dp(64, 2);
        assert!(miss(&mut p, 10).is_none());
        assert!(miss(&mut p, 11).is_none());
    }

    #[test]
    fn sequential_scan_needs_one_row() {
        let mut p = dp(64, 2);
        for page in 0..50u64 {
            miss(&mut p, page);
        }
        // Only the "+1 -> +1" transition exists.
        assert_eq!(p.occupancy(), 1);
        assert_eq!(p.followers_snapshot(Distance::ONE), vec![Distance::ONE]);
    }

    #[test]
    fn papers_two_entry_example() {
        // Reference string 1, 2, 4, 5, 7, 8: "a distance of 1 is followed
        // by a distance of 2 and vice versa … only a 2 entry table" (§2.5).
        let mut p = dp(64, 2);
        for page in [1u64, 2, 4, 5, 7, 8] {
            miss(&mut p, page);
        }
        assert_eq!(p.occupancy(), 2);
        assert_eq!(
            p.followers_snapshot(Distance::new(1)),
            vec![Distance::new(2)]
        );
        assert_eq!(
            p.followers_snapshot(Distance::new(2)),
            vec![Distance::new(1)]
        );
        // Continue the pattern: 10 arrives with distance +2, predicting +1.
        let d = miss(&mut p, 10);
        assert_eq!(d.pages, vec![VirtPage::new(11)]);
    }

    #[test]
    fn prediction_applies_distance_to_current_page() {
        let mut p = dp(64, 2);
        for page in [0u64, 3, 6] {
            miss(&mut p, page);
        }
        let d = miss(&mut p, 9);
        assert_eq!(d.pages, vec![VirtPage::new(12)]);
    }

    #[test]
    fn backward_distances_work() {
        let mut p = dp(64, 2);
        for page in [100u64, 97, 94] {
            miss(&mut p, page);
        }
        let d = miss(&mut p, 91);
        assert_eq!(d.pages, vec![VirtPage::new(88)]);
    }

    #[test]
    fn multiple_slots_predict_multiple_distances() {
        let mut p = dp(64, 2);
        // +1 is followed sometimes by +2, sometimes by +3:
        // 0,1,3 teaches (+1 -> +2); 10,11,14 teaches (+1 -> +3).
        for page in [0u64, 1, 3] {
            miss(&mut p, page);
        }
        for page in [10u64, 11, 14] {
            miss(&mut p, page);
        }
        // Next +1 distance: both +3 (MRU) and +2 predicted.
        miss(&mut p, 20);
        let d = miss(&mut p, 21);
        assert_eq!(d.pages, vec![VirtPage::new(24), VirtPage::new(23)]);
    }

    #[test]
    fn zero_distance_self_prediction_is_suppressed() {
        let mut p = dp(64, 2);
        // Repeated misses on the same page teach "0 follows 0", but
        // prefetching the page that just missed is useless.
        for _ in 0..4 {
            miss(&mut p, 5);
        }
        let d = miss(&mut p, 5);
        assert!(d.pages.is_empty());
    }

    #[test]
    fn stride_change_pattern_is_learned() {
        // Class (d): distances cycle +1,+1,+10. ASP would thrash; DP keeps
        // one row per distinct distance transition.
        let mut p = dp(64, 2);
        let mut page = 0u64;
        let cycle = [1u64, 1, 10];
        for i in 0..30 {
            miss(&mut p, page);
            page += cycle[i % 3];
        }
        // Rows: +1 -> {+1 or +10}, +10 -> {+1}.
        assert!(p.occupancy() <= 3);
        assert_eq!(
            p.followers_snapshot(Distance::new(10)),
            vec![Distance::new(1)]
        );
        let f1 = p.followers_snapshot(Distance::new(1));
        assert!(f1.contains(&Distance::new(1)) && f1.contains(&Distance::new(10)));
    }

    #[test]
    fn tiny_table_suffices_for_regular_patterns() {
        // Even r = 2 captures the paper's alternating example, the
        // size-frugality claim of §2.5.
        let mut p = dp(2, 2);
        for page in [1u64, 2, 4, 5, 7, 8, 10, 11, 13] {
            miss(&mut p, page);
        }
        let d = miss(&mut p, 14); // distance +1 -> predict +2
        assert_eq!(d.pages, vec![VirtPage::new(16)]);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut p = dp(64, 2);
        for page in [0u64, 1, 2, 3] {
            miss(&mut p, page);
        }
        p.flush();
        assert_eq!(p.occupancy(), 0);
        assert!(miss(&mut p, 10).is_none());
        assert!(miss(&mut p, 11).is_none());
    }

    #[test]
    fn pc_qualified_mode_separates_contexts() {
        let mut cfg = PrefetcherConfig::distance();
        cfg.pc_qualified(true);
        let mut p = DistancePrefetcher::from_config(&cfg).unwrap();
        let m = |pc: u64, page: u64| MissContext::demand(VirtPage::new(page), Pc::new(pc));
        // PC 0x40 walks stride +1; learn and predict under that PC.
        p.decide(&m(0x40, 0));
        p.decide(&m(0x40, 1));
        p.decide(&m(0x40, 2));
        let d = p.decide(&m(0x40, 3));
        assert_eq!(d.pages, vec![VirtPage::new(4)]);
        // The same distance under a different PC has no history.
        let d = p.decide(&m(0x99, 4));
        assert!(d.pages.is_empty());
    }

    #[test]
    fn pair_indexing_disambiguates_hub_distances() {
        // Hub-and-spoke cycle (6,5,6,23,6,-8): the hub distance 6 has
        // three successors, overflowing s = 2 slots in plain mode — but
        // every (previous, current) pair has a unique successor, so the
        // pair-indexed variant predicts the whole cycle.
        let cycle = [6i64, 5, 6, 23, 6, -8];
        let walk = |p: &mut DistancePrefetcher| {
            let mut page = 1000i64;
            let mut predicted_hits = 0u32;
            let mut chances = 0u32;
            for i in 0..600 {
                let vp = VirtPage::new(page as u64);
                let d = p.decide(&MissContext::demand(vp, Pc::new(0)));
                let next = page + cycle[i % cycle.len()];
                // After two warm-up cycles the decision at each miss
                // should name the next page to miss.
                if i >= 12 {
                    chances += 1;
                    if d.pages.contains(&VirtPage::new(next as u64)) {
                        predicted_hits += 1;
                    }
                }
                page = next;
            }
            predicted_hits as f64 / chances as f64
        };
        let plain = walk(&mut dp(256, 2));
        let mut paired = dp(256, 2).pair_indexed();
        let pair = walk(&mut paired);
        assert!(pair > 0.95, "pair-indexed accuracy {pair}");
        assert!(pair > plain + 0.2, "pair {pair} should beat plain {plain}");
    }

    #[test]
    fn pair_indexing_still_captures_sequential_scans() {
        let mut p = dp(64, 2).pair_indexed();
        for page in 0..50u64 {
            miss(&mut p, page);
        }
        let d = miss(&mut p, 50);
        assert_eq!(d.pages, vec![VirtPage::new(51)]);
    }

    #[test]
    fn contexts_keep_independent_distance_registers() {
        let mut p = DistancePrefetcher::new(64, 2, Associativity::Full).unwrap();
        // Context 0 walks stride +1.
        miss(&mut p, 0);
        miss(&mut p, 1);
        miss(&mut p, 2);
        p.set_asid(Asid::new(1));
        // Context 1 starts from scratch: its first miss computes no
        // distance, so nothing is predicted and nothing from context 0's
        // registers leaks in.
        assert!(miss(&mut p, 1000).is_none());
        miss(&mut p, 1003);
        miss(&mut p, 1006);
        // Context 1 learned +3 -> +3 in its own tagged rows.
        let d = miss(&mut p, 1009);
        assert_eq!(d.pages, vec![VirtPage::new(1012)]);
        // Switching back restores context 0's +1 chain exactly.
        p.set_asid(Asid::DEFAULT);
        let d = miss(&mut p, 3);
        assert_eq!(d.pages, vec![VirtPage::new(4)]);
    }

    #[test]
    fn evict_asid_clears_registers_and_rows_of_one_context() {
        let mut p = DistancePrefetcher::new(64, 2, Associativity::Full).unwrap();
        miss(&mut p, 0);
        miss(&mut p, 1);
        miss(&mut p, 2);
        p.evict_asid(Asid::DEFAULT);
        // Fully evicted current context behaves like a fresh machine.
        assert_eq!(p.occupancy(), 0);
        assert!(miss(&mut p, 10).is_none());
        assert!(miss(&mut p, 11).is_none());
    }

    #[test]
    fn pair_mode_previous_distance_is_banked_per_context() {
        // In pair mode the key folds in prev_distance; a context switch
        // mid-pattern must not contaminate the other context's keys.
        let mut p = DistancePrefetcher::new(256, 2, Associativity::Full)
            .unwrap()
            .pair_indexed();
        for page in [1u64, 2, 4, 5, 7, 8] {
            miss(&mut p, page);
        }
        p.set_asid(Asid::new(1));
        for page in [500u64, 510, 520] {
            miss(&mut p, page);
        }
        p.set_asid(Asid::DEFAULT);
        // Context 0 resumes its (+2 after +1) alternation: from page 8
        // with prev_distance +1, the next distance +2 lands on 10 and
        // predicts +1 => 11.
        let d = miss(&mut p, 10);
        assert_eq!(d.pages, vec![VirtPage::new(11)]);
    }

    #[test]
    fn profile_matches_table1() {
        let p = dp(256, 2);
        let prof = p.profile();
        assert_eq!(prof.rows, RowBudget::Rows(256));
        assert_eq!(prof.index, IndexSource::Distance);
        assert_eq!(prof.memory_ops_per_miss, 0);
        assert_eq!(prof.max_prefetches, (0, 2));
    }

    #[test]
    fn occupancy_stays_within_capacity_under_random_stress() {
        let mut p = dp(32, 2);
        let mut page = 0u64;
        for i in 0..10_000u64 {
            // Deterministic pseudo-random walk.
            page = page.wrapping_mul(6364136223846793005).wrapping_add(i) % 100_000;
            miss(&mut p, page);
            assert!(p.occupancy() <= 32);
        }
    }
}
