//! Markov prefetching (MP), §2.3 of the paper.
//!
//! MP (Joseph & Grunwald, adapted from caches) approximates a Markov state
//! diagram over missed pages: the prediction table is indexed by the
//! missing virtual page, and each row's `s` slots hold pages that missed
//! immediately after it in the past. On a miss the current page's row (if
//! present) supplies up to `s` prefetches; then the current page is added
//! to the *previous* missing page's slots, building the transition arcs
//! online.

use crate::assoc::Associativity;
use crate::config::{ConfigError, PrefetcherConfig};
use crate::prefetcher::{
    HardwareProfile, IndexSource, MissContext, RowBudget, StateLocation, TlbPrefetcher,
};
use crate::sink::CandidateBuf;
use crate::slots::SlotList;
use crate::table::PredictionTable;
use crate::types::{Asid, VirtPage};

/// The Markov prefetcher.
///
/// # Examples
///
/// ```
/// use tlbsim_core::{MarkovPrefetcher, MissContext, Pc, PrefetcherConfig, TlbPrefetcher, VirtPage};
///
/// let mut mp = MarkovPrefetcher::from_config(&PrefetcherConfig::markov())?;
/// let m = |p: u64| MissContext::demand(VirtPage::new(p), Pc::new(0));
/// // Teach the transition 100 -> 200, then revisit 100.
/// mp.decide(&m(100));
/// mp.decide(&m(200));
/// let d = mp.decide(&m(100));
/// assert_eq!(d.pages, vec![VirtPage::new(200)]);
/// # Ok::<(), tlbsim_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MarkovPrefetcher {
    table: PredictionTable<VirtPage, SlotList<VirtPage>>,
    slots: usize,
    prev_miss: Option<VirtPage>,
    asid: Asid,
    // Parked `prev_miss` registers of non-current contexts, indexed by
    // ASID. Grown only at switch time, so the miss path stays
    // allocation-free.
    banked_prev: Vec<Option<VirtPage>>,
}

impl MarkovPrefetcher {
    /// Creates an MP with `rows` rows of `slots` slots each.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or zero slots.
    pub fn new(rows: usize, slots: usize, assoc: Associativity) -> Result<Self, ConfigError> {
        if slots == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        if slots > SlotList::<VirtPage>::MAX_CAPACITY {
            return Err(ConfigError::TooManySlots { slots });
        }
        Ok(MarkovPrefetcher {
            table: PredictionTable::new(rows, assoc)?,
            slots,
            prev_miss: None,
            asid: Asid::DEFAULT,
            banked_prev: Vec::new(),
        })
    }

    /// Creates an MP from a uniform configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for an invalid geometry or zero slots.
    pub fn from_config(config: &PrefetcherConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Self::new(
            config.row_count(),
            config.slot_count(),
            config.associativity(),
        )
    }

    /// Number of occupied table rows.
    pub fn occupancy(&self) -> usize {
        self.table.len()
    }

    /// Allocating snapshot of the successors recorded for `page` (MRU
    /// first) — debug/test introspection, never called on the miss path.
    pub fn successors_snapshot(&self, page: VirtPage) -> Vec<VirtPage> {
        self.table
            .get(page)
            .map(|row| row.iter().copied().collect())
            .unwrap_or_default()
    }
}

impl TlbPrefetcher for MarkovPrefetcher {
    fn on_miss(&mut self, ctx: &MissContext, sink: &mut CandidateBuf) {
        let page = ctx.page;

        // 1. Index by the missing page; a hit yields up to `s` predictions
        //    written straight into the caller's sink. A table miss
        //    allocates the row with empty slots (§2.3: "this entry is
        //    added, and the s slots for this entry are kept empty").
        let slots = self.slots;
        let row = self.table.get_or_insert_with(page, || SlotList::new(slots));
        for prediction in row.iter() {
            sink.push(*prediction);
        }

        // 2. Record the transition prev -> page in the previous page's
        //    row. The previous row may have been evicted by step 1 in a
        //    conflicting set; re-allocating it matches the hardware, which
        //    simply writes the slot wherever the tag now lives.
        if let Some(prev) = self.prev_miss {
            if prev != page {
                let row = self.table.get_or_insert_with(prev, || SlotList::new(slots));
                row.insert(page);
            }
        }
        self.prev_miss = Some(page);
    }

    fn flush(&mut self) {
        self.table.clear();
        self.prev_miss = None;
        self.banked_prev.fill(None);
    }

    fn set_asid(&mut self, asid: Asid) {
        self.table.set_asid(asid);
        if asid == self.asid {
            return;
        }
        let needed = self.asid.index().max(asid.index()) + 1;
        if self.banked_prev.len() < needed {
            self.banked_prev.resize(needed, None);
        }
        self.banked_prev[self.asid.index()] = self.prev_miss.take();
        self.prev_miss = self.banked_prev[asid.index()].take();
        self.asid = asid;
    }

    fn evict_asid(&mut self, asid: Asid) {
        self.table.evict_asid(asid);
        if asid == self.asid {
            self.prev_miss = None;
        } else if let Some(slot) = self.banked_prev.get_mut(asid.index()) {
            *slot = None;
        }
    }

    fn profile(&self) -> HardwareProfile {
        HardwareProfile {
            name: "MP",
            rows: RowBudget::Rows(self.table.capacity()),
            row_contents: "Page # Tag, s Prediction Page #s",
            location: StateLocation::OnChip,
            index: IndexSource::PageNumber,
            memory_ops_per_miss: 0,
            max_prefetches: (0, self.slots as u32),
        }
    }

    fn name(&self) -> &'static str {
        "MP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Pc;

    fn mp(rows: usize, slots: usize) -> MarkovPrefetcher {
        MarkovPrefetcher::new(rows, slots, Associativity::Direct).unwrap()
    }

    fn miss(p: &mut MarkovPrefetcher, page: u64) -> crate::PrefetchDecision {
        p.decide(&MissContext::demand(VirtPage::new(page), Pc::new(0)))
    }

    #[test]
    fn first_visit_predicts_nothing() {
        let mut p = mp(64, 2);
        assert!(miss(&mut p, 1).is_none());
        assert!(miss(&mut p, 2).is_none());
    }

    #[test]
    fn learns_single_transition() {
        let mut p = mp(64, 2);
        miss(&mut p, 10);
        miss(&mut p, 20);
        miss(&mut p, 30);
        // Revisit 10: it was followed by 20.
        let d = miss(&mut p, 10);
        assert_eq!(d.pages, vec![VirtPage::new(20)]);
    }

    #[test]
    fn slots_hold_multiple_successors_mru_first() {
        let mut p = mp(64, 2);
        // 1 -> 2, then 1 -> 3.
        miss(&mut p, 1);
        miss(&mut p, 2);
        miss(&mut p, 1);
        miss(&mut p, 3);
        let d = miss(&mut p, 1);
        assert_eq!(d.pages, vec![VirtPage::new(3), VirtPage::new(2)]);
    }

    #[test]
    fn slot_lru_evicts_oldest_successor() {
        let mut p = mp(64, 2);
        for succ in [2u64, 3, 4] {
            miss(&mut p, 1);
            miss(&mut p, succ);
        }
        assert_eq!(
            p.successors_snapshot(VirtPage::new(1)),
            vec![VirtPage::new(4), VirtPage::new(3)]
        );
    }

    #[test]
    fn alternation_pattern_fits_in_two_slots() {
        // The paper's §3.2 example: 1,2,3,4, 1,5,2,6,3,7,4,8, 1,2,3,4
        // benefits MP with s=2 because each page keeps both successors.
        let mut p = mp(1024, 2);
        let seq = [1u64, 2, 3, 4, 1, 5, 2, 6, 3, 7, 4, 8];
        for page in seq {
            miss(&mut p, page);
        }
        // Page 1 has seen successors 2 then 5; both retained.
        let s = p.successors_snapshot(VirtPage::new(1));
        assert!(s.contains(&VirtPage::new(2)) && s.contains(&VirtPage::new(5)));
        // On the next visit to 1, both are predicted.
        let d = miss(&mut p, 1);
        assert_eq!(d.pages.len(), 2);
    }

    #[test]
    fn repeated_page_is_not_its_own_successor() {
        let mut p = mp(64, 2);
        miss(&mut p, 5);
        miss(&mut p, 5);
        assert!(p.successors_snapshot(VirtPage::new(5)).is_empty());
    }

    #[test]
    fn small_tables_thrash_on_large_footprints() {
        // Footprint of 128 pages round-robin through a 16-row table: by
        // the time a page recurs its row has been evicted, so MP predicts
        // nothing — the effect that cripples MP on galgel/art/mesa.
        let mut p = mp(16, 2);
        let mut predicted = 0;
        for lap in 0..4 {
            for page in 0..128u64 {
                let d = miss(&mut p, page);
                if lap > 0 && !d.pages.is_empty() {
                    predicted += 1;
                }
            }
        }
        assert_eq!(predicted, 0);
        assert!(p.occupancy() <= 16);
    }

    #[test]
    fn large_tables_capture_the_same_footprint() {
        let mut p = mp(256, 2);
        let mut hits = 0;
        for lap in 0..4 {
            for page in 0..128u64 {
                let d = miss(&mut p, page);
                if lap > 0 && d.pages.contains(&VirtPage::new((page + 1) % 128)) {
                    hits += 1;
                }
            }
        }
        // Every non-first lap predicts the correct successor.
        assert!(hits >= 3 * 127);
    }

    #[test]
    fn flush_forgets_transitions() {
        let mut p = mp(64, 2);
        miss(&mut p, 1);
        miss(&mut p, 2);
        p.flush();
        assert!(miss(&mut p, 1).is_none());
        assert_eq!(p.occupancy(), 1);
    }

    #[test]
    fn contexts_learn_independent_transition_graphs() {
        let mut p = MarkovPrefetcher::new(64, 2, Associativity::Full).unwrap();
        miss(&mut p, 1);
        miss(&mut p, 2);
        p.set_asid(Asid::new(1));
        // The other context sees nothing and must not link its first
        // miss to context 0's prev_miss register.
        assert!(miss(&mut p, 9).is_none());
        miss(&mut p, 8);
        p.set_asid(Asid::DEFAULT);
        // Context 0's graph (1 -> 2) and its register survive intact.
        let d = miss(&mut p, 1);
        assert_eq!(d.pages, vec![VirtPage::new(2)]);
        assert!(p
            .successors_snapshot(VirtPage::new(2))
            .contains(&VirtPage::new(1)));
        p.set_asid(Asid::new(1));
        let d = miss(&mut p, 9);
        assert_eq!(d.pages, vec![VirtPage::new(8)]);
    }

    #[test]
    fn evict_asid_resets_one_context_only() {
        let mut p = MarkovPrefetcher::new(64, 2, Associativity::Full).unwrap();
        miss(&mut p, 1);
        miss(&mut p, 2);
        p.set_asid(Asid::new(1));
        miss(&mut p, 9);
        p.evict_asid(Asid::new(1));
        // Current context was evicted: no stale prev register.
        miss(&mut p, 8);
        assert!(p.successors_snapshot(VirtPage::new(9)).is_empty());
        p.evict_asid(Asid::DEFAULT);
        p.set_asid(Asid::DEFAULT);
        assert!(miss(&mut p, 1).is_none());
    }

    #[test]
    fn profile_matches_table1() {
        let p = mp(256, 2);
        let prof = p.profile();
        assert_eq!(prof.rows, RowBudget::Rows(256));
        assert_eq!(prof.index, IndexSource::PageNumber);
        assert_eq!(prof.max_prefetches, (0, 2));
        assert_eq!(prof.memory_ops_per_miss, 0);
    }
}
