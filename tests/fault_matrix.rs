//! The fault matrix: every injected fault kind, under both decode
//! policies, through every execution mode.
//!
//! The contract this harness pins is *totality*: whatever a
//! [`FaultPlan`] does to an input — corrupt kind bytes, wild virtual
//! addresses, a torn tail, transient I/O errors, worker panics — the
//! stack either completes the run (skipping and counting under
//! quarantine, retrying and degrading in the sharded executor) or
//! returns a typed error. It never panics out of the runner and never
//! silently mis-replays. Strict decode stays the default and rejects
//! any byte-level damage; quarantine admits it up to a budget and
//! reports exactly what was lost.

use std::sync::Arc;

use tlb_distance::prelude::*;
use tlb_distance::trace::{wild_vaddr, BinaryTraceReader, BinaryTraceWriter, FaultyRead};

const RECORDS: u64 = 2000;

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tlbsim-matrix-{}-{tag}.tlbt", std::process::id()))
}

/// Records 2000 accesses of gap to a fresh temp trace.
fn record_gap(tag: &str) -> std::path::PathBuf {
    let path = temp(tag);
    tlb_distance::experiments::replay::record("gap", Scale::TINY, Some(RECORDS), &path).unwrap();
    path
}

/// A copy of `clean` with `plan` baked into its bytes.
fn bake(clean: &std::path::Path, tag: &str, plan: &FaultPlan) -> std::path::PathBuf {
    let mut bytes = std::fs::read(clean).unwrap();
    plan.apply_to_bytes(&mut bytes);
    let path = temp(tag);
    std::fs::write(&path, bytes).unwrap();
    path
}

/// Runs one trace through all three execution modes and asserts each
/// completes with the expected number of accesses.
fn run_all_modes(trace: &TraceWorkload, expected_accesses: u64, context: &str) {
    run_all_modes_with(
        &SimConfig::paper_default(),
        trace,
        expected_accesses,
        context,
    );
}

/// [`run_all_modes`] under an explicit configuration — the adaptive
/// schemes run the same matrix as the paper-default DP.
fn run_all_modes_with(
    config: &SimConfig,
    trace: &TraceWorkload,
    expected_accesses: u64,
    context: &str,
) {
    let sequential = run_app_sharded(trace, Scale::TINY, config, 1).unwrap();
    assert_eq!(
        sequential.merged.accesses, expected_accesses,
        "{context}: sequential"
    );

    let sharded = run_app_sharded(trace, Scale::TINY, config, 4).unwrap();
    assert_eq!(
        sharded.merged.accesses, expected_accesses,
        "{context}: sharded"
    );
    // Sharding approximates around boundaries but conserves the event
    // totals exactly.
    assert_eq!(
        sharded.merged.misses,
        sharded.merged.prefetch_buffer_hits + sharded.merged.demand_walks,
        "{context}: sharded counters inconsistent"
    );
    drop(sequential);

    let mix = MultiStreamSpec::new(
        vec![
            Arc::new(trace.clone()) as Arc<dyn StreamSpec>,
            Arc::new(find_app("mcf").unwrap()),
        ],
        Schedule::RoundRobin { quantum: 500 },
    )
    .unwrap();
    // Both switch policies run the damaged interleave: the flush
    // oracle and flush-free ASID retagging must agree on attribution
    // and on what quarantine lost.
    for policy in [
        SwitchPolicy::FlushOnSwitch,
        SwitchPolicy::Asid {
            contexts: 2,
            tables: TablePolicy::Shared,
        },
    ] {
        let mixed = run_mix_sharded(&mix, Scale::TINY, config, policy, 2).unwrap();
        assert_eq!(
            mixed.merged.per_stream.streams()[0].accesses,
            expected_accesses,
            "{context}: mix attribution ({policy})"
        );
        assert_eq!(
            mixed.health.quarantined_records,
            trace.health().records_bad,
            "{context}: mix health ({policy})"
        );
    }
}

#[test]
fn corrupt_kind_bytes_fail_strict_and_quarantine_under_every_mode() {
    let clean = record_gap("corrupt-clean");
    let plan = FaultPlan::seeded(11, RECORDS, &[(FaultKind::CorruptKind, 6)]);
    let dirty = bake(&clean, "corrupt-dirty", &plan);

    // Strict: a typed error, not a panic, from the open-time scan.
    let strict = TraceWorkload::open(&dirty);
    assert!(
        matches!(strict, Err(ref e) if e.to_string().contains("kind")),
        "strict open must fail typed: {strict:?}"
    );

    // Quarantine: all three execution modes replay the surviving
    // records, and the loss is visible in the health report.
    let trace = TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(6)).unwrap();
    assert_eq!(trace.stream_len(), RECORDS - 6);
    assert_eq!(trace.health().records_bad, 6);
    run_all_modes(&trace, RECORDS - 6, "corrupt-kind");

    // An insufficient budget is a typed error too.
    assert!(TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(5)).is_err());

    std::fs::remove_file(&clean).unwrap();
    std::fs::remove_file(&dirty).unwrap();
}

#[test]
fn wild_vaddrs_decode_fine_and_simulate_under_both_policies() {
    // A wild vaddr is a *valid* record with an absurd address: decode
    // accepts it under either policy, and the simulator's page
    // arithmetic absorbs it.
    let clean = record_gap("wild-clean");
    let plan = FaultPlan::seeded(13, RECORDS, &[(FaultKind::WildVaddr, 8)]);
    let dirty = bake(&clean, "wild-dirty", &plan);

    for policy in [DecodePolicy::Strict, DecodePolicy::quarantine(8)] {
        let trace = TraceWorkload::open_with_policy(&dirty, policy).unwrap();
        assert_eq!(trace.stream_len(), RECORDS, "{policy}");
        assert!(trace.health().is_clean(), "{policy}: wild vaddrs decode ok");
        run_all_modes(&trace, RECORDS, "wild-vaddr");
    }

    // The rewrites really are in the file where the plan put them.
    let trace = TraceWorkload::open(&dirty).unwrap();
    let accesses: Vec<MemoryAccess> = trace.workload().collect();
    for record in plan.records_with(FaultKind::WildVaddr) {
        assert_eq!(accesses[record as usize].vaddr.raw(), wild_vaddr(record));
    }

    std::fs::remove_file(&clean).unwrap();
    std::fs::remove_file(&dirty).unwrap();
}

#[test]
fn a_torn_tail_fails_strict_and_replays_the_whole_records_under_quarantine() {
    let clean = record_gap("tear-clean");
    let plan = FaultPlan::new().with(RECORDS - 1, FaultKind::TruncateTail);
    let dirty = bake(&clean, "tear-dirty", &plan);

    assert!(
        matches!(TraceWorkload::open(&dirty), Err(ref e) if e.to_string().contains("mid-record")),
        "strict must reject the torn tail"
    );

    let trace = TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(0)).unwrap();
    assert_eq!(trace.stream_len(), RECORDS - 1);
    assert!(trace.health().torn_tail_bytes > 0);
    run_all_modes(&trace, RECORDS - 1, "torn-tail");

    std::fs::remove_file(&clean).unwrap();
    std::fs::remove_file(&dirty).unwrap();
}

#[test]
fn transient_io_errors_are_absorbed_and_the_decoded_stream_still_simulates() {
    let clean = record_gap("io-clean");
    let plan = FaultPlan::seeded(17, RECORDS, &[(FaultKind::TransientIo, 5)]);

    for policy in [DecodePolicy::Strict, DecodePolicy::quarantine(0)] {
        // The streaming reader retries through every injected
        // `Interrupted` and decodes the full stream...
        let file = std::fs::File::open(&clean).unwrap();
        let reader =
            BinaryTraceReader::open_with_policy(FaultyRead::new(file, &plan), policy).unwrap();
        let decoded: Vec<MemoryAccess> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(decoded.len() as u64, RECORDS, "{policy}");

        // ...and what it decoded drives every execution mode: re-encode
        // and run, proving the recovered stream is the clean stream.
        let rewritten = temp("io-rewritten");
        let mut writer =
            BinaryTraceWriter::create(std::fs::File::create(&rewritten).unwrap()).unwrap();
        for access in &decoded {
            writer.write(access).unwrap();
        }
        writer.finish().unwrap();
        let trace = TraceWorkload::open(&rewritten).unwrap();
        run_all_modes(&trace, RECORDS, "transient-io");
        std::fs::remove_file(&rewritten).unwrap();
    }

    std::fs::remove_file(&clean).unwrap();
}

#[test]
fn worker_panics_recover_in_every_mode_and_under_both_policies() {
    let clean = record_gap("panic-clean");
    let config = SimConfig::paper_default();
    let baseline = run_app(&TraceWorkload::open(&clean).unwrap(), Scale::TINY, &config).unwrap();

    for policy in [DecodePolicy::Strict, DecodePolicy::quarantine(4)] {
        let trace = TraceWorkload::open_with_policy(&clean, policy).unwrap();
        let plan = FaultPlan::new().with(700, FaultKind::WorkerPanic);

        // Sequential (1 shard) and sharded (4): one budgeted panic is
        // retried away and the stats come back bit-identical.
        for shards in [1usize, 4] {
            let chaos = ChaosSpec::new(Arc::new(trace.clone()), plan.clone(), 1);
            let run = run_app_sharded(&chaos, Scale::TINY, &config, shards).unwrap();
            assert_eq!(run.health.retries, 1, "{policy}@{shards}");
            if shards == 1 {
                assert_eq!(run.merged, baseline, "{policy}: recovery changed stats");
            }
        }

        // Mix: the panicking member heals inside the interleave too —
        // under the flush oracle, flush-free ASID retagging, and the
        // eviction-free partitioned-ASID by-stream shard planner alike.
        for switch in [
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Shared,
            },
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Partitioned,
            },
        ] {
            let chaos = ChaosSpec::new(Arc::new(trace.clone()), plan.clone(), 1);
            let mix = MultiStreamSpec::new(
                vec![
                    Arc::new(chaos) as Arc<dyn StreamSpec>,
                    Arc::new(find_app("mcf").unwrap()),
                ],
                Schedule::RoundRobin { quantum: 500 },
            )
            .unwrap();
            let mixed = run_mix_sharded(&mix, Scale::TINY, &config, switch, 2).unwrap();
            assert_eq!(mixed.health.retries, 1, "{policy}/{switch}: mix retry");
            assert_eq!(
                mixed.merged.per_stream.streams()[0].accesses,
                RECORDS,
                "{policy}/{switch}: mix replayed the panicking member fully"
            );
        }

        // Persistent panics surface typed, never unwinding the caller.
        let stubborn = ChaosSpec::new(
            Arc::new(trace.clone()),
            plan.clone(),
            SHARD_ATTEMPTS as u64 + 1,
        );
        let err = run_app_sharded(&stubborn, Scale::TINY, &config, 1).unwrap_err();
        assert!(matches!(err, SimError::ShardPanicked { .. }), "{policy}");
    }

    std::fs::remove_file(&clean).unwrap();
}

/// The adaptive families run the fault matrix too: a quarantined
/// decode replays its survivors under each scheme in every execution
/// mode, and one budgeted worker panic heals back to the undisturbed
/// baseline bit for bit — adaptivity must not leak shard or retry
/// state into the stats.
#[test]
fn adaptive_schemes_survive_quarantine_and_heal_from_worker_panics() {
    const K: u64 = 6;
    let clean = record_gap("adaptive-clean");
    let corruption = FaultPlan::seeded(23, RECORDS, &[(FaultKind::CorruptKind, K as usize)]);
    let dirty = bake(&clean, "adaptive-dirty", &corruption);

    let mut confident_dp = PrefetcherConfig::distance();
    confident_dp.confidence(ConfidenceConfig::adaptive());
    let schemes = [
        (PrefetcherConfig::trend_stride(), "TP"),
        (
            PrefetcherConfig::ensemble_of(&[PrefetcherKind::Distance, PrefetcherKind::Stride]),
            "EP:DP+ASP",
        ),
        (confident_dp, "C+DP"),
    ];

    for (scheme, label) in &schemes {
        let config = SimConfig::paper_default().with_prefetcher(scheme.clone());

        // Quarantine decode: the damaged trace loses exactly K records
        // and the survivors drive all three execution modes.
        let trace = TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(K)).unwrap();
        assert_eq!(trace.health().records_bad, K, "{label}");
        run_all_modes_with(&config, &trace, RECORDS - K, label);

        // Shard-panic recovery: one budgeted panic retries away, and at
        // one shard the merged stats match the undisturbed baseline.
        let undisturbed = TraceWorkload::open(&clean).unwrap();
        let baseline = run_app(&undisturbed, Scale::TINY, &config).unwrap();
        let panic_plan = FaultPlan::new().with(700, FaultKind::WorkerPanic);
        for shards in [1usize, 4] {
            let chaos = ChaosSpec::new(Arc::new(undisturbed.clone()), panic_plan.clone(), 1);
            let run = run_app_sharded(&chaos, Scale::TINY, &config, shards).unwrap();
            assert_eq!(run.health.retries, 1, "{label}@{shards}");
            if shards == 1 {
                assert_eq!(run.merged, baseline, "{label}: recovery changed stats");
            }
        }

        // ...and the panicking member heals inside a flush-free ASID
        // mix, with its attribution intact.
        let chaos = ChaosSpec::new(Arc::new(undisturbed.clone()), panic_plan.clone(), 1);
        let mix = MultiStreamSpec::new(
            vec![
                Arc::new(chaos) as Arc<dyn StreamSpec>,
                Arc::new(find_app("mcf").unwrap()),
            ],
            Schedule::RoundRobin { quantum: 500 },
        )
        .unwrap();
        let mixed = run_mix_sharded(
            &mix,
            Scale::TINY,
            &config,
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Shared,
            },
            2,
        )
        .unwrap();
        assert_eq!(mixed.health.retries, 1, "{label}: mix retry");
        assert_eq!(
            mixed.merged.per_stream.streams()[0].accesses,
            RECORDS,
            "{label}: mix replayed the panicking member fully"
        );
    }

    std::fs::remove_file(&clean).unwrap();
    std::fs::remove_file(&dirty).unwrap();
}

/// The checked-in regression trace with K planted corruptions recovers
/// exactly 2000 − K records — quarantine's resync is pinned against
/// bytes this build did not write.
#[test]
fn checked_in_trace_with_planted_corruptions_recovers_all_but_k_records() {
    const K: usize = 7;
    let source = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/gap-tiny-2k.tlbt");
    let plan = FaultPlan::seeded(2002, 2000, &[(FaultKind::CorruptKind, K)]);
    let mut bytes = std::fs::read(source).unwrap();
    plan.apply_to_bytes(&mut bytes);
    let dirty = temp("regression-k");
    std::fs::write(&dirty, bytes).unwrap();

    let trace =
        TraceWorkload::open_with_policy(&dirty, DecodePolicy::quarantine(K as u64)).unwrap();
    assert_eq!(trace.stream_len(), 2000 - K as u64);
    assert_eq!(trace.health().records_bad, K as u64);

    // The surviving records are exactly the clean trace minus the
    // corrupted positions, in order.
    let clean: Vec<MemoryAccess> = TraceWorkload::open(source).unwrap().workload().collect();
    let corrupted = plan.records_with(FaultKind::CorruptKind);
    let expected: Vec<MemoryAccess> = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| !corrupted.contains(&(*i as u64)))
        .map(|(_, a)| *a)
        .collect();
    let survived: Vec<MemoryAccess> = trace.workload().collect();
    assert_eq!(survived, expected);

    let stats = run_app(&trace, Scale::TINY, &SimConfig::paper_default()).unwrap();
    assert_eq!(stats.accesses, 2000 - K as u64);
    std::fs::remove_file(&dirty).unwrap();
}

#[test]
fn empty_and_zero_length_inputs_never_panic() {
    // A header-only trace is a valid zero-length stream everywhere.
    let empty = temp("empty");
    BinaryTraceWriter::create(std::fs::File::create(&empty).unwrap())
        .unwrap()
        .finish()
        .unwrap();
    let trace = TraceWorkload::open(&empty).unwrap();
    assert_eq!(trace.stream_len(), 0);

    let config = SimConfig::paper_default();
    // More shards than accesses: trailing shards own empty ranges.
    let run = run_app_sharded(&trace, Scale::TINY, &config, 4).unwrap();
    assert_eq!(run.merged.accesses, 0);
    assert_eq!(run.shards.len(), 4);
    assert!(run.health.is_clean());

    // A zero-access mix member contributes an empty share, typed and
    // attributed, not a crash.
    let mix = MultiStreamSpec::new(
        vec![
            Arc::new(trace.clone()) as Arc<dyn StreamSpec>,
            Arc::new(find_app("gap").unwrap()),
        ],
        Schedule::RoundRobin { quantum: 1000 },
    )
    .unwrap();
    let mixed =
        run_mix_sharded(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch, 2).unwrap();
    assert_eq!(mixed.merged.per_stream.streams()[0].accesses, 0);
    assert_eq!(
        mixed.merged.per_stream.streams()[1].accesses,
        find_app("gap").unwrap().stream_len(Scale::TINY)
    );

    std::fs::remove_file(&empty).unwrap();
}
