//! Panic audit: the fault-tolerance work replaced runtime-path
//! `unwrap`/`expect` with typed errors, and this gate keeps it that
//! way. It walks every workspace crate's `src/` tree, ignores test
//! modules (everything from the first `#[cfg(test)]` down — tests at
//! the bottom of the file is the workspace convention) and comment
//! lines, and enforces two invariants:
//!
//! * **no bare `.unwrap()` at all** — a runtime invariant strong
//!   enough to panic on deserves a message, so `expect` is the floor;
//! * **per-crate `.expect(` ceilings** pinned at today's counts — a
//!   new `expect` is allowed only by consciously raising the ceiling
//!   here, which is exactly the review conversation we want.

use std::path::{Path, PathBuf};

/// Per-crate ceilings for `.expect(` occurrences on non-test lines.
/// Every one of today's sites carries an invariant message
/// ("worker threads joined", "8-byte slice", ...); lowering a ceiling
/// after removing sites is encouraged, raising one is a review event.
const EXPECT_CEILINGS: &[(&str, usize)] = &[
    // core holds at 3 through the adaptive-mechanisms PR: confidence
    // throttling, trend voting and the set-dueling ensemble are all
    // total over their inputs — counter and score saturation replace
    // every would-be overflow panic, so no new expect sites appeared.
    ("crates/core", 3),
    ("crates/mmu", 1),
    ("crates/mem", 0),
    // trace 10 → 18 (trace-format-v2 PR): eight fixed-width
    // `try_into().expect("N-byte slice")` conversions in block.rs when
    // decoding restart records, the footer and index entries — the
    // same infallible slice-to-array idiom mmap.rs and binary.rs
    // already carry, bounds-checked by the enclosing length guards.
    ("crates/trace", 18),
    // workloads 14 → 16 (trace-format-v2 PR): two validated-at-open
    // invariants in the v2 arms of TraceWorkload — the streaming
    // cursor and whole-map health were both established by `open`
    // before any replay can reach them.
    ("crates/workloads", 16),
    // sim 9 → 11 (ASID PR): two `Engine::new(config).expect(...)` in the
    // mix executors, where the config was validated before any work
    // began — same invariant as the sharded executor's worker engines.
    ("crates/sim", 11),
    ("crates/service", 0),
    // experiments 22 → 23 (ASID PR): the asid-variant kernel in the
    // multiprogram throughput probe, mirroring its flush twin.
    // 23 → 25 (trace-format-v2 PR): the raw-vs-compressed replay
    // kernels in the trace_v2 throughput probe, mirroring the
    // existing trace-replay kernel's validated-config invariant.
    ("crates/experiments", 25),
    ("src", 0),
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("source dir readable") {
        let path = entry.expect("dir entry readable").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Counts `.unwrap()` / `.expect(` on lines that are neither comments
/// nor inside the file's test module.
fn census(path: &Path) -> (usize, usize) {
    let text = std::fs::read_to_string(path).expect("source file readable");
    let (mut unwraps, mut expects) = (0, 0);
    for line in text.lines() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // doc examples and prose don't run in release
        }
        unwraps += trimmed.matches(".unwrap()").count();
        expects += trimmed.matches(".expect(").count();
    }
    (unwraps, expects)
}

#[test]
fn runtime_paths_have_no_bare_unwraps_and_expects_stay_under_ceiling() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut failures = Vec::new();
    for &(crate_dir, ceiling) in EXPECT_CEILINGS {
        let src = if crate_dir == "src" {
            root.join("src")
        } else {
            root.join(crate_dir).join("src")
        };
        let mut files = Vec::new();
        rust_sources(&src, &mut files);
        assert!(!files.is_empty(), "no sources under {}", src.display());
        let (mut unwraps, mut expects) = (0, 0);
        for file in &files {
            let (u, e) = census(file);
            if u > 0 {
                failures.push(format!(
                    "{}: {u} bare .unwrap() on a runtime path — use a typed error or .expect with an invariant message",
                    file.display()
                ));
            }
            unwraps += u;
            expects += e;
        }
        let _ = unwraps;
        if expects > ceiling {
            failures.push(format!(
                "{crate_dir}: {expects} .expect( sites exceed the audited ceiling of {ceiling} — prefer a typed error, or raise the ceiling in tests/panic_audit.rs with review"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "panic audit failed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn shim_crates_are_audited_too() {
    // The unsafe-bearing mmap shim is the one place a panic would be
    // hardest to debug; hold it to the same standard.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let shims = root.join("crates").join("shims");
    if !shims.is_dir() {
        return;
    }
    let mut files = Vec::new();
    rust_sources(&shims, &mut files);
    for file in &files {
        let (unwraps, _) = census(file);
        assert_eq!(
            unwraps,
            0,
            "{}: bare .unwrap() in a shim crate's runtime path",
            file.display()
        );
    }
}
