//! Tests for the features beyond the paper's core evaluation (its §4
//! "ongoing work" list): page sizes, two-level TLBs, multiprogrammed
//! flushing, and PC-qualified distance indexing.

use tlb_distance::mmu::{HierarchyConfig, TlbConfig};
use tlb_distance::prelude::*;
use tlb_distance::sim::HierarchyEngine;

fn dp_accuracy_with_page_size(app_name: &str, bytes: u64) -> f64 {
    let app = find_app(app_name).expect("registered");
    let mut config = SimConfig::paper_default();
    config.page_size = PageSize::new(bytes).expect("power of two");
    run_app(app, Scale::TINY, &config)
        .expect("valid")
        .accuracy()
}

#[test]
fn dp_predicts_across_page_sizes() {
    // §3.3: "DP is able to make good predictions across different TLB
    // configurations and page sizes as well." Larger pages divide all
    // page numbers (and hence distances) down but preserve the pattern
    // structure for scan-dominated applications.
    for bytes in [4096u64, 8192, 16384] {
        let acc = dp_accuracy_with_page_size("galgel", bytes);
        assert!(acc > 0.9, "galgel at {bytes}-byte pages: {acc}");
        let acc = dp_accuracy_with_page_size("adpcm-enc", bytes);
        assert!(acc > 0.9, "adpcm-enc at {bytes}-byte pages: {acc}");
    }
}

#[test]
fn larger_pages_reduce_misses() {
    let app = find_app("galgel").expect("registered");
    let mut misses = Vec::new();
    for bytes in [4096u64, 8192, 16384] {
        let mut config = SimConfig::baseline();
        config.page_size = PageSize::new(bytes).expect("power of two");
        misses.push(run_app(app, Scale::TINY, &config).expect("valid").misses);
    }
    assert!(
        misses[0] > misses[1],
        "8K pages should miss less: {misses:?}"
    );
    assert!(
        misses[1] > misses[2],
        "16K pages should miss less: {misses:?}"
    );
}

#[test]
fn two_level_hierarchy_prefetching_works_on_the_suite() {
    // Prefetching into the L2 TLB: the prefetcher sees the doubly
    // filtered miss stream but still captures the strided applications.
    for name in ["galgel", "adpcm-enc", "wupwise"] {
        let app = find_app(name).expect("registered");
        let mut engine = HierarchyEngine::new(
            &SimConfig::paper_default(),
            HierarchyConfig {
                l1: TlbConfig::fully_associative(16),
                l2: TlbConfig::paper_default(),
            },
        )
        .expect("valid");
        engine.run(app.workload(Scale::TINY));
        let stats = engine.stats();
        assert!(stats.l1_misses >= stats.l2_misses, "{name}");
        assert!(stats.accuracy() > 0.9, "{name}: {:?}", stats);
    }
}

#[test]
fn hierarchy_l2_misses_match_single_level_misses() {
    // With an inclusive hierarchy whose L2 equals the single-level TLB,
    // the L2 miss stream is the same as the single-level miss stream
    // for workloads without pathological L1 interference.
    let app = find_app("gap").expect("registered");
    let single = run_app(app, Scale::TINY, &SimConfig::baseline()).expect("valid");
    let mut engine = HierarchyEngine::new(
        &SimConfig::baseline(),
        HierarchyConfig {
            l1: TlbConfig::fully_associative(16),
            l2: TlbConfig::paper_default(),
        },
    )
    .expect("valid");
    engine.run(app.workload(Scale::TINY));
    assert_eq!(engine.stats().l2_misses, single.misses);
}

#[test]
fn frequent_flushing_mostly_destroys_history_schemes() {
    // Multiprogrammed mode: flushing every 5k accesses wipes RP's stack
    // repeatedly; DP relearns its distance rows within a handful of
    // misses so it degrades far less on a strided app.
    let app = find_app("adpcm-enc").expect("registered");
    let run_flushed = |prefetcher: PrefetcherConfig| {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let mut engine = tlb_distance::sim::Engine::new(&config).expect("valid");
        engine.run_with_flush_interval(app.workload(Scale::TINY), 5_000);
        engine.stats().accuracy()
    };
    let dp = run_flushed(PrefetcherConfig::distance());
    let rp = run_flushed(PrefetcherConfig::recency());
    assert!(dp > 0.8, "DP under flushing: {dp}");
    assert!(
        dp > rp + 0.1,
        "DP {dp} should tolerate flushes better than RP {rp}"
    );
}

#[test]
fn pc_qualified_dp_helps_interleaved_contexts_and_costs_little_elsewhere() {
    let plain_cfg = PrefetcherConfig::distance();
    let mut pc_cfg = PrefetcherConfig::distance();
    pc_cfg.pc_qualified(true);

    for name in ["galgel", "wupwise"] {
        let app = find_app(name).expect("registered");
        let plain = run_app(
            app,
            Scale::TINY,
            &SimConfig::paper_default().with_prefetcher(plain_cfg.clone()),
        )
        .expect("valid")
        .accuracy();
        let qualified = run_app(
            app,
            Scale::TINY,
            &SimConfig::paper_default().with_prefetcher(pc_cfg.clone()),
        )
        .expect("valid")
        .accuracy();
        assert!(
            qualified > plain - 0.1,
            "{name}: pc-qualified {qualified} vs plain {plain}"
        );
    }
}

#[test]
fn disabling_prefetch_filtering_wastes_traffic() {
    // crafty's chase predictions frequently target TLB-resident pages,
    // so the residency filter is load-bearing there.
    let app = find_app("crafty").expect("registered");
    let filtered = run_app(app, Scale::TINY, &SimConfig::paper_default()).expect("valid");
    let blind = run_app(
        app,
        Scale::TINY,
        &SimConfig::paper_default().with_prefetch_filtering(false),
    )
    .expect("valid");
    assert!(blind.prefetches_issued > filtered.prefetches_issued);
    // Misses are untouched either way.
    assert_eq!(blind.misses, filtered.misses);
}
