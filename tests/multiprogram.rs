//! Differential harness for multiprogrammed (interleaved) execution.
//!
//! Pins the contracts the `MultiStreamSpec` / `run_mix` /
//! `run_mix_sharded` stack stands on:
//!
//! * **degeneration** — a 1-stream mix is the stream: the composed
//!   workload replays bit-identically through the plain `run_app` path,
//!   flush flag or not (one stream never switches);
//! * **aggregate-path composition** — a mix is an ordinary `StreamSpec`:
//!   `run_app` and `run_app_sharded` accept it unchanged, with exact
//!   access conservation and scheduling-independent results;
//! * **shard determinism** — `run_mix_sharded` is repeatable at every
//!   shard count, conserves per-stream attribution across shard counts
//!   1/2/4, and under flush-on-switch is *bit-identical* across all of
//!   them (switch-aligned boundaries make a shard's cold start exactly
//!   the sequential run's post-flush state);
//! * **source-agnosticism** — recording a component stream to a `TLBT`
//!   trace and mixing the replay back in changes nothing, bit for bit.

use std::sync::Arc;

use tlbsim_core::PrefetcherConfig;
use tlbsim_sim::{run_app, run_app_sharded, run_mix, run_mix_sharded, PerStreamStats, SimConfig};
use tlbsim_workloads::{find_app, MultiStreamSpec, Scale, Schedule, StreamSpec, TraceWorkload};

fn mix_of(names: &[&str], schedule: Schedule) -> MultiStreamSpec {
    let streams: Vec<Arc<dyn StreamSpec>> = names
        .iter()
        .map(|n| Arc::new(find_app(n).unwrap()) as Arc<dyn StreamSpec>)
        .collect();
    MultiStreamSpec::new(streams, schedule).unwrap()
}

#[test]
fn one_stream_mix_replays_bit_identically_through_run_app() {
    // The acceptance pin: a 1-stream MultiStreamSpec (no flush) is
    // bit-identical to the plain run_app path — as a StreamSpec (the
    // composed workload IS the stream) and through the mix-aware runner
    // (whose only addition is the single stream's own attribution).
    for (name, prefetcher) in [
        ("gap", PrefetcherConfig::distance()),
        ("mcf", PrefetcherConfig::recency()),
        ("perl4", PrefetcherConfig::markov()),
    ] {
        let app = find_app(name).unwrap();
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let plain = run_app(app, Scale::TINY, &config).unwrap();

        let mix = mix_of(&[name], Schedule::RoundRobin { quantum: 4096 });
        let via_stream_spec = run_app(&mix, Scale::TINY, &config).unwrap();
        assert_eq!(via_stream_spec, plain, "{name}: StreamSpec path diverged");

        let mut via_run_mix = run_mix(&mix, Scale::TINY, &config, false).unwrap();
        assert_eq!(via_run_mix.per_stream.len(), 1);
        assert_eq!(via_run_mix.per_stream.streams()[0].accesses, plain.accesses);
        assert_eq!(via_run_mix.per_stream.streams()[0].misses, plain.misses);
        via_run_mix.per_stream = PerStreamStats::default();
        assert_eq!(via_run_mix, plain, "{name}: run_mix path diverged");
    }
}

#[test]
fn mix_is_an_ordinary_stream_spec_for_the_sharded_executor() {
    // The aggregate path: run_app_sharded partitions the interleave at
    // arbitrary access positions (no switch awareness) and must still
    // conserve accesses and stay deterministic.
    let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 1000 });
    let config = SimConfig::paper_default();
    let total = mix.stream_len(Scale::TINY);

    let sequential = run_app(&mix, Scale::TINY, &config).unwrap();
    assert_eq!(sequential.accesses, total);

    let one = run_app_sharded(&mix, Scale::TINY, &config, 1).unwrap();
    assert_eq!(one.merged, sequential, "shards=1 must be bit-identical");

    for shards in [2usize, 4] {
        let first = run_app_sharded(&mix, Scale::TINY, &config, shards).unwrap();
        assert_eq!(
            first.merged.accesses, total,
            "{shards} shards lost accesses"
        );
        let again = run_app_sharded(&mix, Scale::TINY, &config, shards).unwrap();
        assert_eq!(
            again.merged, first.merged,
            "{shards} shards not deterministic"
        );
    }
}

#[test]
fn interleave_is_deterministic_across_shard_counts_including_attribution() {
    // The acceptance pin, no-flush half: repeated runs agree exactly at
    // every shard count, and per-stream attribution of *accesses* — the
    // partition the schedule fixes — is identical across 1/2/4 shards.
    let mix = mix_of(
        &["gap", "mcf", "perl4"],
        Schedule::RoundRobin { quantum: 2000 },
    );
    let config = SimConfig::paper_default();
    let reference = run_mix(&mix, Scale::TINY, &config, false).unwrap();
    for shards in [1usize, 2, 4] {
        let first = run_mix_sharded(&mix, Scale::TINY, &config, false, shards).unwrap();
        let again = run_mix_sharded(&mix, Scale::TINY, &config, false, shards).unwrap();
        assert_eq!(first.merged, again.merged, "{shards} shards not repeatable");
        for (a, b) in first.shards.iter().zip(&again.shards) {
            assert_eq!(a.range, b.range);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(first.merged.accesses, reference.accesses);
        assert_eq!(first.merged.per_stream.len(), 3);
        for (share, expected) in first
            .merged
            .per_stream
            .streams()
            .iter()
            .zip(reference.per_stream.streams())
        {
            assert_eq!(
                share.accesses, expected.accesses,
                "{shards} shards shifted per-stream accesses"
            );
        }
        if shards == 1 {
            assert_eq!(first.merged, reference, "one shard must equal sequential");
        }
    }
}

#[test]
fn flush_on_switch_sharding_is_bit_identical_at_every_shard_count() {
    // The acceptance pin, flush half: switch-aligned shard boundaries
    // make a shard's cold start exactly the sequential run's post-flush
    // state, so the merged statistics — per-stream attribution included
    // — are bit-identical across shard counts, not merely close.
    for (names, prefetcher) in [
        (&["gap", "mcf"][..], PrefetcherConfig::distance()),
        (&["gap", "mcf", "perl4"][..], PrefetcherConfig::recency()),
    ] {
        let mix = mix_of(names, Schedule::RoundRobin { quantum: 1500 });
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let sequential = run_mix(&mix, Scale::TINY, &config, true).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, true, shards).unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{names:?} at {shards} shards diverged under flush-on-switch"
            );
        }
    }
}

#[test]
fn attribution_sums_to_the_aggregate_under_every_mechanism() {
    let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 750 });
    for prefetcher in [
        PrefetcherConfig::none(),
        PrefetcherConfig::sequential(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ] {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher.clone());
        for flush in [false, true] {
            let stats = run_mix(&mix, Scale::TINY, &config, flush).unwrap();
            let shares = stats.per_stream.streams();
            assert_eq!(
                shares.iter().map(|s| s.accesses).sum::<u64>(),
                stats.accesses,
                "{prefetcher:?} flush={flush}"
            );
            assert_eq!(shares.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
            assert_eq!(
                shares.iter().map(|s| s.prefetch_buffer_hits).sum::<u64>(),
                stats.prefetch_buffer_hits
            );
            assert_eq!(
                shares.iter().map(|s| s.demand_walks).sum::<u64>(),
                stats.demand_walks
            );
            assert_eq!(
                shares.iter().map(|s| s.prefetches_issued).sum::<u64>(),
                stats.prefetches_issued
            );
        }
    }
}

#[test]
fn weighted_and_random_schedules_shard_deterministically_too() {
    let config = SimConfig::paper_default();
    for schedule in [
        Schedule::Weighted {
            quanta: vec![500, 2000],
        },
        Schedule::Random {
            seed: 7,
            min_quantum: 128,
            max_quantum: 2048,
        },
    ] {
        let mix = mix_of(&["gap", "mcf"], schedule.clone());
        let sequential = run_mix(&mix, Scale::TINY, &config, true).unwrap();
        for shards in [2usize, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, true, shards).unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{schedule:?} diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn replayed_traces_mix_bit_identically_with_their_generators() {
    // Record one component to a TLBT trace, then mix the *replay* with a
    // live model: the interleave must be indistinguishable from mixing
    // the generator itself — the format, not the source, is the
    // contract.
    let app = find_app("gap").unwrap();
    let path =
        std::env::temp_dir().join(format!("tlbsim-multiprog-diff-{}.tlbt", std::process::id()));
    {
        use tlbsim_trace::BinaryTraceWriter;
        let mut writer = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
        for access in app.workload(Scale::TINY) {
            writer.write(&access).unwrap();
        }
        writer.finish().unwrap();
    }
    let trace = TraceWorkload::open(&path).unwrap();
    assert_eq!(trace.stream_len(), app.stream_len(Scale::TINY));

    let schedule = Schedule::RoundRobin { quantum: 1024 };
    let generator_mix = mix_of(&["gap", "mcf"], schedule.clone());
    let replay_mix = MultiStreamSpec::new(
        vec![
            Arc::new(trace) as Arc<dyn StreamSpec>,
            Arc::new(find_app("mcf").unwrap()),
        ],
        schedule,
    )
    .unwrap();

    let config = SimConfig::paper_default();
    for flush in [false, true] {
        let from_generator = run_mix(&generator_mix, Scale::TINY, &config, flush).unwrap();
        let from_replay = run_mix(&replay_mix, Scale::TINY, &config, flush).unwrap();
        assert_eq!(
            from_replay, from_generator,
            "trace-backed mix diverged (flush={flush})"
        );
    }
    let sharded = run_mix_sharded(&replay_mix, Scale::TINY, &config, true, 4).unwrap();
    let sequential = run_mix(&generator_mix, Scale::TINY, &config, true).unwrap();
    assert_eq!(sharded.merged, sequential);
    std::fs::remove_file(&path).unwrap();
}
