//! Differential harness for multiprogrammed (interleaved) execution.
//!
//! Pins the contracts the `MultiStreamSpec` / `run_mix` /
//! `run_mix_sharded` stack stands on:
//!
//! * **degeneration** — a 1-stream mix is the stream: the composed
//!   workload replays bit-identically through the plain `run_app` path
//!   under every switch policy (one stream never evicts anything), and
//!   an ASID run squeezed to a single live context is *bit-identical*
//!   to the flush-on-switch oracle — every switch fully evicts the sole
//!   context, which is exactly a flush;
//! * **aggregate-path composition** — a mix is an ordinary `StreamSpec`:
//!   `run_app` and `run_app_sharded` accept it unchanged, with exact
//!   access conservation and scheduling-independent results;
//! * **shard determinism** — `run_mix_sharded` is repeatable at every
//!   shard count, conserves per-stream attribution across shard counts
//!   1/2/4, and under flush-on-switch (and its degenerate ASID twin)
//!   is *bit-identical* across all of them (switch-aligned boundaries
//!   make a shard's cold start exactly the sequential run's post-flush
//!   state); fully-provisioned partitioned ASID runs shard by whole
//!   streams and are bit-identical too (no cross-stream state to cut);
//! * **attribution** — per-stream accesses/misses/prefetch counters sum
//!   to the aggregate under every mechanism and policy, and with no
//!   prefetcher over disjoint regions the per-stream demand footprints
//!   *partition* the aggregate page union exactly;
//! * **source-agnosticism** — recording a component stream to a `TLBT`
//!   trace and mixing the replay back in changes nothing, bit for bit.

use std::sync::Arc;

use proptest::prelude::*;
use tlbsim_core::PrefetcherConfig;
use tlbsim_sim::{
    run_app, run_app_sharded, run_mix, run_mix_sharded, PerStreamStats, SimConfig, SwitchPolicy,
    TablePolicy,
};
use tlbsim_workloads::{
    find_app, LoopedScan, MultiStreamSpec, Scale, Schedule, StreamSpec, TraceWorkload, Workload,
};

fn mix_of(names: &[&str], schedule: Schedule) -> MultiStreamSpec {
    let streams: Vec<Arc<dyn StreamSpec>> = names
        .iter()
        .map(|n| Arc::new(find_app(n).unwrap()) as Arc<dyn StreamSpec>)
        .collect();
    MultiStreamSpec::new(streams, schedule).unwrap()
}

/// A tiny synthetic stream over its own page region — `laps` strided
/// passes over `pages` pages starting at `base`, one access per page
/// visit. Disjoint bases give disjoint demand footprints, the setup the
/// footprint-partition properties need.
struct Region {
    name: String,
    base: u64,
    pages: u64,
    laps: u64,
}

impl Region {
    fn new(index: usize, base: u64, pages: u64, laps: u64) -> Self {
        Region {
            name: format!("region-{index}"),
            base,
            pages,
            laps,
        }
    }
}

impl StreamSpec for Region {
    fn name(&self) -> &str {
        &self.name
    }

    fn workload(&self, _scale: Scale) -> Workload {
        Workload::from_visits(
            self.name.clone(),
            Box::new(LoopedScan::new(
                self.base, 1, self.pages, self.laps, 1, 0x40,
            )),
        )
    }

    fn stream_len(&self, _scale: Scale) -> u64 {
        self.pages * self.laps
    }
}

/// `count` region streams with pairwise-disjoint page ranges.
fn disjoint_regions(count: usize, pages: u64, laps: u64) -> Vec<Arc<dyn StreamSpec>> {
    (0..count)
        .map(|i| {
            Arc::new(Region::new(i, 1 + i as u64 * 1_000_000, pages, laps)) as Arc<dyn StreamSpec>
        })
        .collect()
}

const ASID_ALL: fn(usize) -> SwitchPolicy = |n| SwitchPolicy::Asid {
    contexts: n,
    tables: TablePolicy::Shared,
};

#[test]
fn one_stream_mix_replays_bit_identically_through_run_app() {
    // The acceptance pin: a 1-stream MultiStreamSpec is bit-identical
    // to the plain run_app path — as a StreamSpec (the composed
    // workload IS the stream) and through the mix-aware runner under
    // every switch policy (whose only addition is the single stream's
    // own attribution; one stream never switches, and a sole ASID
    // context is never evicted).
    for (name, prefetcher) in [
        ("gap", PrefetcherConfig::distance()),
        ("mcf", PrefetcherConfig::recency()),
        ("perl4", PrefetcherConfig::markov()),
    ] {
        let app = find_app(name).unwrap();
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let plain = run_app(app, Scale::TINY, &config).unwrap();

        let mix = mix_of(&[name], Schedule::RoundRobin { quantum: 4096 });
        let via_stream_spec = run_app(&mix, Scale::TINY, &config).unwrap();
        assert_eq!(via_stream_spec, plain, "{name}: StreamSpec path diverged");

        for policy in [
            SwitchPolicy::None,
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 1,
                tables: TablePolicy::Shared,
            },
            SwitchPolicy::Asid {
                contexts: 1,
                tables: TablePolicy::Partitioned,
            },
        ] {
            let mut via_run_mix = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
            assert_eq!(via_run_mix.per_stream.len(), 1);
            assert_eq!(via_run_mix.per_stream.streams()[0].accesses, plain.accesses);
            assert_eq!(via_run_mix.per_stream.streams()[0].misses, plain.misses);
            via_run_mix.per_stream = PerStreamStats::default();
            assert_eq!(via_run_mix, plain, "{name}: run_mix({policy}) diverged");
        }
    }
}

#[test]
fn mix_is_an_ordinary_stream_spec_for_the_sharded_executor() {
    // The aggregate path: run_app_sharded partitions the interleave at
    // arbitrary access positions (no switch awareness) and must still
    // conserve accesses and stay deterministic.
    let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 1000 });
    let config = SimConfig::paper_default();
    let total = mix.stream_len(Scale::TINY);

    let sequential = run_app(&mix, Scale::TINY, &config).unwrap();
    assert_eq!(sequential.accesses, total);

    let one = run_app_sharded(&mix, Scale::TINY, &config, 1).unwrap();
    assert_eq!(one.merged, sequential, "shards=1 must be bit-identical");

    for shards in [2usize, 4] {
        let first = run_app_sharded(&mix, Scale::TINY, &config, shards).unwrap();
        assert_eq!(
            first.merged.accesses, total,
            "{shards} shards lost accesses"
        );
        let again = run_app_sharded(&mix, Scale::TINY, &config, shards).unwrap();
        assert_eq!(
            again.merged, first.merged,
            "{shards} shards not deterministic"
        );
    }
}

#[test]
fn interleave_is_deterministic_across_shard_counts_including_attribution() {
    // The no-flush half: repeated runs agree exactly at every shard
    // count, and per-stream attribution of *accesses* — the partition
    // the schedule fixes — is identical across 1/2/4 shards.
    let mix = mix_of(
        &["gap", "mcf", "perl4"],
        Schedule::RoundRobin { quantum: 2000 },
    );
    let config = SimConfig::paper_default();
    let reference = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::None).unwrap();
    for shards in [1usize, 2, 4] {
        let first =
            run_mix_sharded(&mix, Scale::TINY, &config, SwitchPolicy::None, shards).unwrap();
        let again =
            run_mix_sharded(&mix, Scale::TINY, &config, SwitchPolicy::None, shards).unwrap();
        assert_eq!(first.merged, again.merged, "{shards} shards not repeatable");
        for (a, b) in first.shards.iter().zip(&again.shards) {
            assert_eq!(a.range, b.range);
            assert_eq!(a.stats, b.stats);
        }
        assert_eq!(first.merged.accesses, reference.accesses);
        assert_eq!(first.merged.per_stream.len(), 3);
        for (share, expected) in first
            .merged
            .per_stream
            .streams()
            .iter()
            .zip(reference.per_stream.streams())
        {
            assert_eq!(
                share.accesses, expected.accesses,
                "{shards} shards shifted per-stream accesses"
            );
        }
        if shards == 1 {
            assert_eq!(first.merged, reference, "one shard must equal sequential");
        }
    }
}

#[test]
fn flush_on_switch_sharding_is_bit_identical_at_every_shard_count() {
    // The flush half: switch-aligned shard boundaries make a shard's
    // cold start exactly the sequential run's post-flush state, so the
    // merged statistics — per-stream attribution included — are
    // bit-identical across shard counts, not merely close.
    for (names, prefetcher) in [
        (&["gap", "mcf"][..], PrefetcherConfig::distance()),
        (&["gap", "mcf", "perl4"][..], PrefetcherConfig::recency()),
    ] {
        let mix = mix_of(names, Schedule::RoundRobin { quantum: 1500 });
        let config = SimConfig::paper_default().with_prefetcher(prefetcher);
        let sequential = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for shards in [1usize, 2, 4] {
            let sharded = run_mix_sharded(
                &mix,
                Scale::TINY,
                &config,
                SwitchPolicy::FlushOnSwitch,
                shards,
            )
            .unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{names:?} at {shards} shards diverged under flush-on-switch"
            );
        }
    }
}

#[test]
fn degenerate_asid_is_bit_identical_to_the_flush_oracle() {
    // THE equivalence pin of the ASID model: squeeze the live-context
    // budget to 1 and every context switch must fully evict the sole
    // context — TLB, prefetch buffer, prediction state, banked
    // registers — which is exactly what the flush oracle does. The two
    // policies must then be *bit-identical*, per-stream attribution and
    // footprints included, for both table policies, under history-,
    // recency- and markov-based mechanisms alike.
    for (names, prefetcher) in [
        (&["gap", "mcf"][..], PrefetcherConfig::distance()),
        (&["gap", "mcf", "perl4"][..], PrefetcherConfig::recency()),
        (&["eon", "perl4"][..], PrefetcherConfig::markov()),
    ] {
        let mix = mix_of(names, Schedule::RoundRobin { quantum: 1500 });
        let config = SimConfig::paper_default().with_prefetcher(prefetcher.clone());
        let oracle = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for tables in [TablePolicy::Shared, TablePolicy::Partitioned] {
            let squeezed = SwitchPolicy::Asid {
                contexts: 1,
                tables,
            };
            let asid = run_mix(&mix, Scale::TINY, &config, squeezed).unwrap();
            assert_eq!(
                asid, oracle,
                "{names:?} {prefetcher:?}: contexts=1 ASID ({tables:?} tables) \
                 diverged from the flush oracle"
            );
        }
    }
}

#[test]
fn degenerate_asid_sharding_matches_the_flush_oracle_at_every_shard_count() {
    // The sharded leg of the equivalence: a contexts=1 ASID run rides
    // the same switch-aligned shard planner as flush-on-switch, so the
    // degenerate twin must stay bit-identical to the *sequential* flush
    // oracle at any shard count — and under weighted and random
    // schedules, not just round-robin.
    let config = SimConfig::paper_default();
    for schedule in [
        Schedule::RoundRobin { quantum: 1500 },
        Schedule::Weighted {
            quanta: vec![500, 2000],
        },
        Schedule::Random {
            seed: 7,
            min_quantum: 128,
            max_quantum: 2048,
        },
    ] {
        let mix = mix_of(&["gap", "mcf"], schedule.clone());
        let oracle = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        let squeezed = SwitchPolicy::Asid {
            contexts: 1,
            tables: TablePolicy::Shared,
        };
        assert_eq!(
            run_mix(&mix, Scale::TINY, &config, squeezed).unwrap(),
            oracle,
            "{schedule:?}: sequential degenerate ASID diverged"
        );
        for shards in [2usize, 4] {
            let sharded = run_mix_sharded(&mix, Scale::TINY, &config, squeezed, shards).unwrap();
            assert_eq!(
                sharded.merged, oracle,
                "{schedule:?}: degenerate ASID diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn sharded_partitioned_asid_is_bit_identical_to_sequential() {
    // Fully-provisioned partitioned ASID runs have no cross-stream
    // state at all (private tables, a live context per stream), so the
    // by-stream shard planner must reproduce the sequential run bit for
    // bit at every shard count — footprints and attribution included.
    let mix = mix_of(
        &["gap", "mcf", "perl4"],
        Schedule::RoundRobin { quantum: 1500 },
    );
    let config = SimConfig::paper_default();
    let policy = SwitchPolicy::Asid {
        contexts: 3,
        tables: TablePolicy::Partitioned,
    };
    let sequential = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
    for shards in [1usize, 2, 4] {
        let sharded = run_mix_sharded(&mix, Scale::TINY, &config, policy, shards).unwrap();
        assert_eq!(
            sharded.merged, sequential,
            "partitioned ASID diverged at {shards} shards"
        );
    }
}

#[test]
fn sixty_four_asid_streams_run_flush_free_with_full_attribution() {
    // The scale pin: 64 streams, each its own live context, interleaved
    // flush-free — every stream gets attributed statistics and a
    // non-empty demand footprint, and with disjoint regions and no
    // prefetcher the footprints partition the aggregate page union
    // exactly. The same mix under partitioned tables shards by whole
    // streams, bit-identically to its own sequential run.
    let streams = disjoint_regions(64, 40, 3);
    let mix = MultiStreamSpec::new(streams, Schedule::RoundRobin { quantum: 32 }).unwrap();
    let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::none());
    let stats = run_mix(&mix, Scale::TINY, &config, ASID_ALL(64)).unwrap();

    assert_eq!(stats.per_stream.len(), 64);
    let shares = stats.per_stream.streams();
    assert_eq!(
        shares.iter().map(|s| s.accesses).sum::<u64>(),
        stats.accesses
    );
    assert_eq!(shares.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
    for (i, share) in shares.iter().enumerate() {
        assert_eq!(share.accesses, 120, "stream {i} lost accesses");
        assert_eq!(share.footprint_pages, 40, "stream {i} footprint wrong");
    }
    assert_eq!(
        shares.iter().map(|s| s.footprint_pages).sum::<u64>(),
        stats.footprint_pages,
        "disjoint footprints must partition the aggregate"
    );

    let partitioned = SwitchPolicy::Asid {
        contexts: 64,
        tables: TablePolicy::Partitioned,
    };
    let sequential = run_mix(&mix, Scale::TINY, &config, partitioned).unwrap();
    let sharded = run_mix_sharded(&mix, Scale::TINY, &config, partitioned, 2).unwrap();
    assert_eq!(
        sharded.merged, sequential,
        "sharding the 64-stream mix diverged"
    );
}

#[test]
fn attribution_sums_to_the_aggregate_under_every_mechanism() {
    let mix = mix_of(&["gap", "eon"], Schedule::RoundRobin { quantum: 750 });
    for prefetcher in [
        PrefetcherConfig::none(),
        PrefetcherConfig::sequential(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ] {
        let config = SimConfig::paper_default().with_prefetcher(prefetcher.clone());
        for policy in [
            SwitchPolicy::None,
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Shared,
            },
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Partitioned,
            },
        ] {
            let stats = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
            let shares = stats.per_stream.streams();
            assert_eq!(
                shares.iter().map(|s| s.accesses).sum::<u64>(),
                stats.accesses,
                "{prefetcher:?} {policy}"
            );
            assert_eq!(shares.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
            assert_eq!(
                shares.iter().map(|s| s.prefetch_buffer_hits).sum::<u64>(),
                stats.prefetch_buffer_hits
            );
            assert_eq!(
                shares.iter().map(|s| s.demand_walks).sum::<u64>(),
                stats.demand_walks
            );
            assert_eq!(
                shares.iter().map(|s| s.prefetches_issued).sum::<u64>(),
                stats.prefetches_issued
            );
            // Footprints are sets, not deltas: streams can overlap (both
            // demand-miss a page) or undershoot (a prefetched page's
            // first touch is never a demand miss), so no summation law
            // holds here — the exact-partition property lives in the
            // no-prefetcher, disjoint-region tests.
        }
    }
}

#[test]
fn weighted_and_random_schedules_shard_deterministically_too() {
    let config = SimConfig::paper_default();
    for schedule in [
        Schedule::Weighted {
            quanta: vec![500, 2000],
        },
        Schedule::Random {
            seed: 7,
            min_quantum: 128,
            max_quantum: 2048,
        },
    ] {
        let mix = mix_of(&["gap", "mcf"], schedule.clone());
        let sequential = run_mix(&mix, Scale::TINY, &config, SwitchPolicy::FlushOnSwitch).unwrap();
        for shards in [2usize, 4] {
            let sharded = run_mix_sharded(
                &mix,
                Scale::TINY,
                &config,
                SwitchPolicy::FlushOnSwitch,
                shards,
            )
            .unwrap();
            assert_eq!(
                sharded.merged, sequential,
                "{schedule:?} diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn replayed_traces_mix_bit_identically_with_their_generators() {
    // Record one component to a TLBT trace, then mix the *replay* with a
    // live model: the interleave must be indistinguishable from mixing
    // the generator itself — the format, not the source, is the
    // contract.
    let app = find_app("gap").unwrap();
    let path =
        std::env::temp_dir().join(format!("tlbsim-multiprog-diff-{}.tlbt", std::process::id()));
    {
        use tlbsim_trace::BinaryTraceWriter;
        let mut writer = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
        for access in app.workload(Scale::TINY) {
            writer.write(&access).unwrap();
        }
        writer.finish().unwrap();
    }
    let trace = TraceWorkload::open(&path).unwrap();
    assert_eq!(trace.stream_len(), app.stream_len(Scale::TINY));

    let schedule = Schedule::RoundRobin { quantum: 1024 };
    let generator_mix = mix_of(&["gap", "mcf"], schedule.clone());
    let replay_mix = MultiStreamSpec::new(
        vec![
            Arc::new(trace) as Arc<dyn StreamSpec>,
            Arc::new(find_app("mcf").unwrap()),
        ],
        schedule,
    )
    .unwrap();

    let config = SimConfig::paper_default();
    for policy in [SwitchPolicy::None, SwitchPolicy::FlushOnSwitch, ASID_ALL(2)] {
        let from_generator = run_mix(&generator_mix, Scale::TINY, &config, policy).unwrap();
        let from_replay = run_mix(&replay_mix, Scale::TINY, &config, policy).unwrap();
        assert_eq!(
            from_replay, from_generator,
            "trace-backed mix diverged ({policy})"
        );
    }
    let sharded = run_mix_sharded(
        &replay_mix,
        Scale::TINY,
        &config,
        SwitchPolicy::FlushOnSwitch,
        4,
    )
    .unwrap();
    let sequential = run_mix(
        &generator_mix,
        Scale::TINY,
        &config,
        SwitchPolicy::FlushOnSwitch,
    )
    .unwrap();
    assert_eq!(sharded.merged, sequential);
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A mix's composed length is exactly the sum of its component
    /// stream lengths, and the runner conserves it as the aggregate
    /// access count — for any stream count up to 256 and any quantum.
    #[test]
    fn mix_length_is_conserved_at_any_stream_count(
        count in 2usize..=256,
        pages in 4u64..=24,
        laps in 1u64..=2,
        quantum in 1u64..=96,
    ) {
        let streams = disjoint_regions(count, pages, laps);
        let expected: u64 = streams.iter().map(|s| s.stream_len(Scale::TINY)).sum();
        let mix = MultiStreamSpec::new(streams, Schedule::RoundRobin { quantum }).unwrap();
        prop_assert_eq!(mix.stream_len(Scale::TINY), expected);

        let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::none());
        let stats = run_mix(&mix, Scale::TINY, &config, ASID_ALL(count)).unwrap();
        prop_assert_eq!(stats.accesses, expected);
        prop_assert_eq!(stats.per_stream.len(), count);
        for (i, share) in stats.per_stream.streams().iter().enumerate() {
            prop_assert_eq!(share.accesses, pages * laps, "stream {} misattributed", i);
        }
    }

    /// Per-stream attribution sums to the aggregate under any switch
    /// policy, live-context budget and schedule geometry.
    #[test]
    fn attribution_partitions_the_aggregate_under_any_policy(
        count in 2usize..=48,
        contexts in 1usize..=48,
        quantum in 1u64..=64,
        partitioned in proptest::bool::ANY,
        flavor in 0u8..3,
    ) {
        let policy = match flavor {
            0 => SwitchPolicy::None,
            1 => SwitchPolicy::FlushOnSwitch,
            _ => SwitchPolicy::Asid {
                contexts: contexts.min(count),
                tables: if partitioned {
                    TablePolicy::Partitioned
                } else {
                    TablePolicy::Shared
                },
            },
        };
        let mix = MultiStreamSpec::new(
            disjoint_regions(count, 16, 2),
            Schedule::RoundRobin { quantum },
        )
        .unwrap();
        let config = SimConfig::paper_default();
        let stats = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
        let shares = stats.per_stream.streams();
        prop_assert_eq!(shares.iter().map(|s| s.accesses).sum::<u64>(), stats.accesses);
        prop_assert_eq!(shares.iter().map(|s| s.misses).sum::<u64>(), stats.misses);
        prop_assert_eq!(
            shares.iter().map(|s| s.demand_walks).sum::<u64>(),
            stats.demand_walks
        );
    }

    /// With no prefetcher and pairwise-disjoint regions, the per-stream
    /// demand footprints are an exact partition of the aggregate page
    /// union — each stream owns precisely its own pages, under shared
    /// and partitioned tables alike.
    #[test]
    fn disjoint_footprints_partition_the_aggregate(
        count in 2usize..=32,
        pages in 2u64..=32,
        quantum in 1u64..=48,
        partitioned in proptest::bool::ANY,
    ) {
        let mix = MultiStreamSpec::new(
            disjoint_regions(count, pages, 2),
            Schedule::RoundRobin { quantum },
        )
        .unwrap();
        let config = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::none());
        let policy = SwitchPolicy::Asid {
            contexts: count,
            tables: if partitioned {
                TablePolicy::Partitioned
            } else {
                TablePolicy::Shared
            },
        };
        let stats = run_mix(&mix, Scale::TINY, &config, policy).unwrap();
        let shares = stats.per_stream.streams();
        for (i, share) in shares.iter().enumerate() {
            prop_assert_eq!(share.footprint_pages, pages, "stream {} footprint", i);
        }
        prop_assert_eq!(
            shares.iter().map(|s| s.footprint_pages).sum::<u64>(),
            stats.footprint_pages
        );
    }
}
