//! Differential oracles for the adaptive mechanism families.
//!
//! Each adaptive mechanism has a degenerate configuration that must be
//! **bit-identical** in [`SimStats`] to the static mechanism it
//! extends — across the sequential engine, the sharded executor, and
//! ASID-tagged multiprogrammed mixes:
//!
//! * confidence throttling at threshold 0 with unlimited degree is the
//!   wrapped base mechanism;
//! * the trend-vote stride detector at window 2 is the Chen–Baer
//!   stride machine on monotone streams;
//! * a one-component set-dueling ensemble is that component.
//!
//! Property tests add the guard rails: throttled issue never exceeds
//! the configured degree, passthrough tracks the base on arbitrary
//! streams, and duels replay deterministically.

use std::sync::Arc;

use proptest::prelude::*;
use tlb_distance::core::{AccessKind, CandidateBuf};
use tlb_distance::prelude::*;
use tlb_distance::trace::BinaryTraceWriter;

const APPS: [&str; 3] = ["gap", "mcf", "galgel"];

/// Runs one scheme over one app through all three execution modes.
fn all_modes(scheme: &PrefetcherConfig, app: &'static AppSpec, partner: &str) -> Vec<SimStats> {
    let config = SimConfig::paper_default().with_prefetcher(scheme.clone());
    let sequential = run_app(app, Scale::TINY, &config).unwrap();
    let sharded = run_app_sharded(app, Scale::TINY, &config, 4)
        .unwrap()
        .merged;
    let mix = MultiStreamSpec::new(
        vec![
            Arc::new(app) as Arc<dyn StreamSpec>,
            Arc::new(find_app(partner).unwrap()),
        ],
        Schedule::RoundRobin { quantum: 500 },
    )
    .unwrap();
    let mixed = run_mix(
        &mix,
        Scale::TINY,
        &config,
        SwitchPolicy::Asid {
            contexts: 2,
            tables: TablePolicy::Shared,
        },
    )
    .unwrap();
    vec![sequential, sharded, mixed]
}

/// Asserts the degenerate scheme matches its oracle bit for bit on
/// every registered app in [`APPS`], in every execution mode.
fn assert_degenerates(degenerate: &PrefetcherConfig, oracle: &PrefetcherConfig, context: &str) {
    for name in APPS {
        let app = find_app(name).unwrap();
        let got = all_modes(degenerate, app, "mcf");
        let want = all_modes(oracle, app, "mcf");
        for (mode, (g, w)) in ["sequential", "sharded", "asid-mix"]
            .iter()
            .zip(got.iter().zip(&want))
        {
            assert_eq!(g, w, "{context}: {name} diverges in {mode} mode");
        }
    }
}

#[test]
fn passthrough_confidence_degenerates_to_every_base() {
    for oracle in [
        PrefetcherConfig::distance(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
    ] {
        let mut wrapped = oracle.clone();
        wrapped.confidence(ConfidenceConfig::passthrough());
        assert_degenerates(&wrapped, &oracle, "C+passthrough");
    }
}

#[test]
fn single_component_ensemble_degenerates_to_its_component() {
    for kind in [
        PrefetcherKind::Distance,
        PrefetcherKind::Stride,
        PrefetcherKind::Recency,
    ] {
        let ensemble = PrefetcherConfig::ensemble_of(&[kind]);
        let oracle = PrefetcherConfig::new(kind);
        assert_degenerates(&ensemble, &oracle, "EP single-component");
    }
}

fn temp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tlbsim-adaptive-{}-{tag}.tlbt", std::process::id()))
}

/// Writes a monotone trace: 2000 touches walking pages 0, k, 2k, …
/// from one PC — the stream class on which window-2 trend voting and
/// the Chen–Baer machine are provably the same predictor.
fn monotone_trace(stride: u64, tag: &str) -> std::path::PathBuf {
    let path = temp(tag);
    let mut writer = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
    for i in 0..2000u64 {
        writer
            .write(&MemoryAccess {
                pc: Pc::new(0x4000),
                vaddr: VirtAddr::new(i * stride * 4096),
                kind: AccessKind::Read,
            })
            .unwrap();
    }
    writer.finish().unwrap();
    path
}

#[test]
fn window_two_trend_vote_degenerates_to_asp_on_monotone_streams() {
    let mut trend = PrefetcherConfig::trend_stride();
    trend.window(2);
    let oracle = PrefetcherConfig::stride();
    for stride in [1u64, 3, 7] {
        let path = monotone_trace(stride, &format!("mono-{stride}"));
        let trace = TraceWorkload::open(&path).unwrap();
        // The mix partner is a second monotone stream so both ASID
        // contexts carry the equivalence, not just the first.
        let partner = monotone_trace(stride + 1, &format!("mono-partner-{stride}"));
        let partner_trace = TraceWorkload::open(&partner).unwrap();

        let config_tp = SimConfig::paper_default().with_prefetcher(trend.clone());
        let config_asp = SimConfig::paper_default().with_prefetcher(oracle.clone());

        let seq_tp = run_app(&trace, Scale::TINY, &config_tp).unwrap();
        let seq_asp = run_app(&trace, Scale::TINY, &config_asp).unwrap();
        assert_eq!(seq_tp, seq_asp, "stride {stride}: sequential");
        assert!(
            seq_tp.prefetch_buffer_hits > 0,
            "stride {stride}: the oracle pair must actually predict"
        );

        let sharded_tp = run_app_sharded(&trace, Scale::TINY, &config_tp, 4).unwrap();
        let sharded_asp = run_app_sharded(&trace, Scale::TINY, &config_asp, 4).unwrap();
        assert_eq!(
            sharded_tp.merged, sharded_asp.merged,
            "stride {stride}: sharded"
        );

        let mix = MultiStreamSpec::new(
            vec![
                Arc::new(trace.clone()) as Arc<dyn StreamSpec>,
                Arc::new(partner_trace.clone()),
            ],
            Schedule::RoundRobin { quantum: 250 },
        )
        .unwrap();
        for policy in [
            SwitchPolicy::FlushOnSwitch,
            SwitchPolicy::Asid {
                contexts: 2,
                tables: TablePolicy::Shared,
            },
        ] {
            let mix_tp = run_mix(&mix, Scale::TINY, &config_tp, policy).unwrap();
            let mix_asp = run_mix(&mix, Scale::TINY, &config_asp, policy).unwrap();
            assert_eq!(mix_tp, mix_asp, "stride {stride}: mix under {policy}");
        }

        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&partner).unwrap();
    }
}

fn replay(p: &mut Box<dyn TlbPrefetcher>, pages: &[u64]) -> Vec<(Vec<VirtPage>, u32)> {
    let mut sink = CandidateBuf::new();
    let mut out = Vec::with_capacity(pages.len());
    for (i, page) in pages.iter().enumerate() {
        sink.clear();
        p.on_miss(
            &MissContext::demand(VirtPage::new(*page), Pc::new(i as u64 % 4)),
            &mut sink,
        );
        out.push((sink.pages().to_vec(), sink.maintenance_ops()));
    }
    out
}

proptest! {
    #[test]
    fn throttled_issue_never_exceeds_the_configured_degree(
        pages in prop::collection::vec(0u64..64, 0..400),
        degree in 1u32..4,
    ) {
        let mut cfg = PrefetcherConfig::distance();
        cfg.confidence(ConfidenceConfig { threshold: 2, max_degree: degree });
        let mut throttled = cfg.build().unwrap();
        let mut sink = CandidateBuf::new();
        for (i, page) in pages.iter().enumerate() {
            sink.clear();
            throttled.on_miss(
                &MissContext::demand(VirtPage::new(*page), Pc::new(i as u64 % 4)),
                &mut sink,
            );
            prop_assert!(sink.pages().len() <= degree as usize);
        }
    }

    #[test]
    fn passthrough_tracks_the_base_on_arbitrary_streams(
        pages in prop::collection::vec(0u64..512, 0..300),
    ) {
        let mut cfg = PrefetcherConfig::distance();
        cfg.confidence(ConfidenceConfig::passthrough());
        let mut wrapped = cfg.build().unwrap();
        let mut base = PrefetcherConfig::distance().build().unwrap();
        prop_assert_eq!(replay(&mut wrapped, &pages), replay(&mut base, &pages));
    }

    #[test]
    fn duels_replay_deterministically(
        pages in prop::collection::vec(0u64..4096, 0..300),
    ) {
        let components = [PrefetcherKind::Distance, PrefetcherKind::Stride];
        let mut first = PrefetcherConfig::ensemble_of(&components).build().unwrap();
        let mut second = PrefetcherConfig::ensemble_of(&components).build().unwrap();
        prop_assert_eq!(replay(&mut first, &pages), replay(&mut second, &pages));
    }
}
