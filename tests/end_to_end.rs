//! Cross-crate integration: the full pipeline from application models
//! through traces, both engines, and the experiment harness.

use tlb_distance::experiments;
use tlb_distance::prelude::*;
use tlb_distance::trace::{BinaryTraceReader, BinaryTraceWriter, TraceStats, TraceStreamExt};

#[test]
fn simulation_from_trace_equals_simulation_from_generator() {
    // Writing a workload to a binary trace and replaying it must produce
    // bit-identical simulation results.
    let app = find_app("wupwise").unwrap();
    let mut buf = Vec::new();
    let mut writer = BinaryTraceWriter::create(&mut buf).unwrap();
    for access in app.workload(Scale::TINY) {
        writer.write(&access).unwrap();
    }
    writer.finish().unwrap();

    let mut from_gen = Engine::new(&SimConfig::paper_default()).unwrap();
    from_gen.run(app.workload(Scale::TINY));

    let mut from_trace = Engine::new(&SimConfig::paper_default()).unwrap();
    from_trace.run(
        BinaryTraceReader::open(buf.as_slice())
            .unwrap()
            .map(|r| r.expect("valid record")),
    );

    assert_eq!(from_gen.stats(), from_trace.stats());
}

#[test]
fn trace_stats_agree_with_simulation_footprint() {
    let app = find_app("gap").unwrap();
    let stats = TraceStats::from_stream(app.workload(Scale::TINY), PageSize::DEFAULT);
    let sim = run_app(app, Scale::TINY, &SimConfig::baseline()).unwrap();
    // The baseline engine touches exactly the pages of the stream (no
    // prefetch-induced page-table entries).
    assert_eq!(stats.footprint_pages, sim.footprint_pages);
    assert_eq!(stats.accesses, sim.accesses);
}

#[test]
fn windowing_reduces_misses_proportionally() {
    let app = find_app("galgel").unwrap();
    let full: Vec<_> = app.workload(Scale::TINY).collect();
    let mut engine = Engine::new(&SimConfig::baseline()).unwrap();
    engine.run(full.iter().copied().window(full.len() as u64 / 2, u64::MAX));
    let sim = engine.stats();
    assert!(sim.accesses <= full.len() as u64 - full.len() as u64 / 2);
    assert!(sim.misses > 0);
}

#[test]
fn table1_reflects_implementations() {
    let rendered = experiments::table1::run().render();
    for needle in ["ASP", "MP", "RP", "DP", "Distance", "No. of PTEs"] {
        assert!(
            rendered.contains(needle),
            "missing {needle} in:\n{rendered}"
        );
    }
}

#[test]
fn timing_and_functional_engines_agree_on_miss_counts() {
    for name in ["gap", "mcf", "eon"] {
        let app = find_app(name).unwrap();
        let f = run_app(app, Scale::TINY, &SimConfig::paper_default()).unwrap();
        let t = run_app_timed(
            app,
            Scale::TINY,
            &SimConfig::paper_default(),
            TimingParams::paper_default(),
        )
        .unwrap();
        assert_eq!(f.accesses, t.accesses, "{name}");
        assert_eq!(f.misses, t.misses, "{name}");
    }
}

#[test]
fn timing_engine_prefetching_never_slows_distance_prefetching_below_useless() {
    // DP has no maintenance traffic, so its worst case is "prefetches
    // never useful" — normalized cycles can exceed 1 only through
    // in-flight waits, which are bounded by the demand penalty.
    let app = find_app("fma3d").unwrap();
    let params = TimingParams::paper_default();
    let base = run_app_timed(app, Scale::TINY, &SimConfig::baseline(), params).unwrap();
    let dp = run_app_timed(app, Scale::TINY, &SimConfig::paper_default(), params).unwrap();
    let normalized = dp.normalized_against(&base);
    assert!(normalized <= 1.02, "DP on fma3d: {normalized}");
}

#[test]
fn prefetch_buffer_isolation_guarantee_holds_suite_wide() {
    // §2: "Prefetching can thus not increase the miss rates of the
    // original TLB." Check the invariant across a sample of apps and all
    // mechanisms.
    for name in ["gzip", "mcf", "parser", "swim", "gsm-enc", "ks"] {
        let app = find_app(name).unwrap();
        let base = run_app(app, Scale::TINY, &SimConfig::baseline()).unwrap();
        for kind in [
            PrefetcherKind::Sequential,
            PrefetcherKind::Stride,
            PrefetcherKind::Markov,
            PrefetcherKind::Recency,
            PrefetcherKind::Distance,
        ] {
            let cfg = SimConfig::paper_default().with_prefetcher(PrefetcherConfig::new(kind));
            let stats = run_app(app, Scale::TINY, &cfg).unwrap();
            assert_eq!(
                stats.misses, base.misses,
                "{name}/{kind:?}: prefetching changed the miss count"
            );
        }
    }
}

#[test]
fn multiprogrammed_flushing_degrades_but_does_not_break() {
    let app = find_app("gap").unwrap();
    let mut engine = Engine::new(&SimConfig::paper_default()).unwrap();
    engine.run_with_flush_interval(app.workload(Scale::TINY), 20_000);
    let flushed = engine.stats().clone();
    let plain = run_app(app, Scale::TINY, &SimConfig::paper_default()).unwrap();
    assert!(flushed.misses >= plain.misses);
    assert!(flushed.accuracy() > 0.0);
}

#[test]
fn pc_qualified_distance_extension_works_suite_wide() {
    // The §4 "ongoing work" extension must run and stay in the same
    // ballpark as plain DP on a strided app.
    let app = find_app("galgel").unwrap();
    let mut cfg = PrefetcherConfig::distance();
    cfg.pc_qualified(true);
    let qualified = run_app(
        app,
        Scale::TINY,
        &SimConfig::paper_default().with_prefetcher(cfg),
    )
    .unwrap();
    assert!(qualified.accuracy() > 0.9);
}
