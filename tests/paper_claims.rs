//! Integration tests asserting the paper's qualitative claims hold on
//! the reproduced system, at test-friendly scale.
//!
//! These are the "shape" checks of the reproduction: who wins on which
//! behaviour class, where each mechanism collapses, and the headline
//! DP-vs-RP trade-off. Absolute accuracies are deliberately not pinned —
//! they depend on run length and synthetic-model purity — but orderings
//! and collapse points are what the paper's conclusions rest on.

use tlb_distance::prelude::*;

fn accuracy(app: &AppSpec, prefetcher: PrefetcherConfig) -> f64 {
    let config = SimConfig::paper_default().with_prefetcher(prefetcher);
    // SMALL keeps runs fast while leaving cold-start transients (which
    // depress the history-based schemes) below the assertion margins.
    run_app(app, Scale::SMALL, &config)
        .expect("valid configuration")
        .accuracy()
}

fn four_schemes(app_name: &str) -> (f64, f64, f64, f64) {
    let app = find_app(app_name).expect("registered app");
    (
        accuracy(app, PrefetcherConfig::stride()),
        accuracy(app, PrefetcherConfig::markov()),
        accuracy(app, PrefetcherConfig::recency()),
        accuracy(app, PrefetcherConfig::distance()),
    )
}

#[test]
fn all_mechanisms_succeed_on_repeated_scans() {
    // §3.2: facerec, gap (small footprints) — "nearly all mechanisms
    // give quite good prediction accuracies", including MP at r = 256.
    for name in ["facerec", "gap"] {
        let (asp, mp, rp, dp) = four_schemes(name);
        assert!(asp > 0.8, "{name}: ASP {asp}");
        assert!(mp > 0.7, "{name}: MP {mp}");
        assert!(rp > 0.7, "{name}: RP {rp}");
        assert!(dp > 0.8, "{name}: DP {dp}");
    }
}

#[test]
fn markov_collapses_on_large_footprints() {
    // §3.2: galgel, art, mesa — MP "performs poorly with small r"
    // because the footprint exceeds its table, while RP/ASP/DP stay
    // high.
    for name in ["galgel", "art", "mesa", "adpcm-enc"] {
        let (asp, mp, rp, dp) = four_schemes(name);
        assert!(mp < 0.15, "{name}: MP should collapse, got {mp}");
        assert!(asp > 0.8, "{name}: ASP {asp}");
        assert!(rp > 0.6, "{name}: RP {rp}");
        assert!(dp > 0.9, "{name}: DP {dp}");
    }
}

#[test]
fn history_schemes_cannot_predict_first_touches() {
    // §3.2: gzip, perlbmk, equake, epic, mipmap, anagram, yacr2 — cold
    // strided misses favour ASP (and DP "delivers as good accuracies as
    // ASP"); RP and MP have no history to work with.
    for name in [
        "gzip",
        "perlbmk",
        "equake",
        "epic",
        "mipmap-mesa",
        "anagram",
        "yacr2",
    ] {
        let (asp, mp, rp, dp) = four_schemes(name);
        assert!(rp < 0.05, "{name}: RP {rp}");
        assert!(mp < 0.05, "{name}: MP {mp}");
        assert!(asp > 0.75, "{name}: ASP {asp}");
        assert!(dp > 0.9 * asp, "{name}: DP {dp} should match ASP {asp}");
    }
}

#[test]
fn recency_leads_on_fixed_order_revisits() {
    // §3.2: RP gives the best or close-to-best accuracy for gcc, crafty,
    // ammp, lucas, sixtrack, apsi (and mcf, vpr, twolf from the Table 3
    // set): fixed-order irregular revisits.
    for name in [
        "gcc", "crafty", "ammp", "lucas", "sixtrack", "apsi", "mcf", "vpr", "twolf", "gs",
    ] {
        let (asp, mp, rp, dp) = four_schemes(name);
        assert!(rp > 0.75, "{name}: RP {rp}");
        assert!(rp >= dp - 0.05, "{name}: RP {rp} should lead DP {dp}");
        assert!(rp > asp, "{name}: RP {rp} should lead ASP {asp}");
        let _ = mp;
    }
}

#[test]
fn distance_prefetching_stays_close_to_history_schemes() {
    // §3.2: "DP comes very close to RP or MP in several applications
    // where history-based predictions do the best such as gcc, mesa,
    // galgel, gap, parser, and ammp."
    for name in ["gcc", "mesa", "galgel", "gap", "parser", "ammp"] {
        let (_, mp, rp, dp) = four_schemes(name);
        let best_history = rp.max(mp);
        assert!(
            dp > best_history - 0.35,
            "{name}: DP {dp} too far behind history {best_history}"
        );
    }
}

#[test]
fn markov_beats_recency_on_alternation() {
    // §3.2: parser and vortex — "MP does better than even RP" thanks to
    // its s successor slots; ASP cannot cope. vortex's 440-page
    // footprint needs r = 512 (Figure 7 sweeps r for exactly this
    // reason); parser fits in the default 256 rows.
    for (name, mp_rows) in [("parser", 256), ("vortex", 512)] {
        let app = find_app(name).expect("registered app");
        let mut mp_cfg = PrefetcherConfig::markov();
        mp_cfg.rows(mp_rows);
        let mp = accuracy(app, mp_cfg);
        let rp = accuracy(app, PrefetcherConfig::recency());
        let asp = accuracy(app, PrefetcherConfig::stride());
        assert!(mp > rp + 0.1, "{name}: MP {mp} should beat RP {rp}");
        assert!(asp < 0.5, "{name}: ASP {asp}");
    }
}

#[test]
fn distance_prefetching_dominates_repeating_irregularity() {
    // §3.2: wupwise, swim, mgrid, applu, mpeg-dec, mpegply, perl4 —
    // "DP does much better than the others".
    for name in [
        "wupwise", "swim", "mgrid", "applu", "mpeg-dec", "mpegply", "perl4",
    ] {
        let (asp, mp, rp, dp) = four_schemes(name);
        let best_other = asp.max(mp).max(rp);
        assert!(
            dp > best_other + 0.3,
            "{name}: DP {dp} vs best other {best_other}"
        );
        assert!(dp > 0.8, "{name}: DP {dp}");
    }
}

#[test]
fn distance_prefetching_is_the_only_scheme_with_predictions_on_noisy_cycles() {
    // §3.2: gsm, jpeg, ks, msvc, bc — "DP is the only mechanism which
    // makes any noticeable predictions (even if the accuracy does not
    // exceed 20%)".
    for name in [
        "gsm-enc", "gsm-dec", "jpeg-enc", "jpeg-dec", "msvc", "bc", "ks",
    ] {
        let (asp, mp, rp, dp) = four_schemes(name);
        assert!(dp > 0.1, "{name}: DP {dp} should be noticeable");
        assert!(asp < 0.05, "{name}: ASP {asp}");
        assert!(mp < 0.05, "{name}: MP {mp}");
        assert!(rp < 0.05, "{name}: RP {rp}");
    }
}

#[test]
fn nothing_predicts_pure_irregularity() {
    // §3.2: eon, fma3d, g721, pgp-dec — either too few misses or no
    // repeating structure; no mechanism reaches useful accuracy.
    for name in ["eon", "fma3d", "g721-enc", "g721-dec", "pgp-dec"] {
        let (asp, mp, rp, dp) = four_schemes(name);
        for (scheme, acc) in [("ASP", asp), ("MP", mp), ("RP", rp), ("DP", dp)] {
            assert!(acc < 0.15, "{name}: {scheme} {acc} should be near zero");
        }
    }
}

#[test]
fn high_miss_apps_hit_their_paper_miss_rates() {
    // §3.2 quotes the miss rates for the eight highest-miss apps on a
    // 128-entry fully-associative TLB. The synthetic models target them
    // within a factor-of-(~1.3) tolerance.
    for (app, paper_rate) in tlb_distance::workloads::high_miss_apps() {
        let stats = run_app(app, Scale::TINY, &SimConfig::baseline()).unwrap();
        let measured = stats.miss_rate();
        assert!(
            measured > paper_rate * 0.7 && measured < paper_rate * 1.4,
            "{}: measured miss rate {measured:.4} vs paper {paper_rate:.4}",
            app.name
        );
    }
}

#[test]
fn dp_works_with_tiny_tables() {
    // §3.3 / Figure 9: "even a small direct-mapped 32-256 entry table
    // suffices to give very good predictions."
    let app = find_app("adpcm-enc").unwrap();
    let mut small = PrefetcherConfig::distance();
    small.rows(32);
    let small_acc = accuracy(app, small);
    let large_acc = accuracy(app, PrefetcherConfig::distance());
    assert!(
        small_acc > large_acc - 0.05,
        "32-row DP {small_acc} vs 256-row {large_acc}"
    );
    assert!(small_acc > 0.9);
}

#[test]
fn confidence_threshold_sweeps_an_accuracy_coverage_frontier() {
    // The adaptive extension's frontier claim: tightening the
    // confidence threshold monotonically trades coverage for issue
    // discipline. Every step up the threshold issues no more
    // prefetches — and converts no more misses — than the step below,
    // tracing an accuracy-vs-coverage frontier from the bare base
    // (threshold 0) down to saturated-counters-only (threshold 3).
    for name in ["gap", "gcc", "mcf"] {
        let app = find_app(name).unwrap();
        let mut frontier = Vec::new();
        for threshold in [0u8, 2, 3] {
            let mut cfg = PrefetcherConfig::distance();
            cfg.confidence(ConfidenceConfig {
                threshold,
                max_degree: 4,
            });
            let stats = run_app(
                app,
                Scale::SMALL,
                &SimConfig::paper_default().with_prefetcher(cfg),
            )
            .unwrap();
            frontier.push((
                threshold,
                stats.prefetches_issued,
                stats.prefetch_buffer_hits,
            ));
        }
        for pair in frontier.windows(2) {
            let (loose, tight) = (pair[0], pair[1]);
            assert!(
                tight.1 <= loose.1,
                "{name}: threshold {} issued {} > threshold {}'s {}",
                tight.0,
                tight.1,
                loose.0,
                loose.1
            );
            assert!(
                tight.2 <= loose.2,
                "{name}: threshold {} covered {} > threshold {}'s {}",
                tight.0,
                tight.2,
                loose.0,
                loose.2
            );
        }
        // The loose end of the frontier actually prefetches.
        assert!(frontier[0].1 > 0, "{name}: frontier is degenerate");
    }
}

#[test]
fn adaptive_throttling_keeps_accuracy_while_cutting_issue() {
    // The default throttle (threshold 2, degree 4) must sit on the
    // useful part of the frontier: never issuing more than the bare
    // base, never giving up more than a sliver of accuracy.
    for name in ["gap", "gcc", "mcf"] {
        let app = find_app(name).unwrap();
        let base = run_app(
            app,
            Scale::SMALL,
            &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::distance()),
        )
        .unwrap();
        let mut cfg = PrefetcherConfig::distance();
        cfg.confidence(ConfidenceConfig::adaptive());
        let throttled = run_app(
            app,
            Scale::SMALL,
            &SimConfig::paper_default().with_prefetcher(cfg),
        )
        .unwrap();
        assert!(
            throttled.prefetches_issued <= base.prefetches_issued,
            "{name}: throttle issued more ({} > {})",
            throttled.prefetches_issued,
            base.prefetches_issued
        );
        assert!(
            throttled.accuracy() >= base.accuracy() - 0.05,
            "{name}: throttle lost too much accuracy ({:.3} vs {:.3})",
            throttled.accuracy(),
            base.accuracy()
        );
    }
}

#[test]
fn recency_traffic_dwarfs_distance_traffic() {
    // Table 1 / §3.2: RP needs up to 6 memory operations per miss (4 of
    // them pointer maintenance); DP needs only its s fetches. The paper
    // measured RP traffic at 2-3x DP's.
    let app = find_app("mcf").unwrap();
    let rp = run_app(
        app,
        Scale::TINY,
        &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency()),
    )
    .unwrap();
    let dp = run_app(app, Scale::TINY, &SimConfig::paper_default()).unwrap();
    assert!(
        rp.memory_ops_per_miss() > 1.8 * dp.memory_ops_per_miss(),
        "RP {:.2} ops/miss vs DP {:.2}",
        rp.memory_ops_per_miss(),
        dp.memory_ops_per_miss()
    );
}

#[test]
fn dp_beats_rp_on_cycles_despite_lower_accuracy() {
    // Table 3's headline: on the five apps where RP's accuracy leads,
    // DP still wins (or ties) on execution cycles because RP pays its
    // pointer maintenance on the memory channel.
    for (app, _, _) in tlb_distance::workloads::table3_apps() {
        let params = TimingParams::paper_default();
        let baseline = run_app_timed(app, Scale::TINY, &SimConfig::baseline(), params).unwrap();
        let rp = run_app_timed(
            app,
            Scale::TINY,
            &SimConfig::paper_default().with_prefetcher(PrefetcherConfig::recency()),
            params,
        )
        .unwrap();
        let dp = run_app_timed(app, Scale::TINY, &SimConfig::paper_default(), params).unwrap();
        let rp_norm = rp.normalized_against(&baseline);
        let dp_norm = dp.normalized_against(&baseline);
        assert!(
            dp_norm <= rp_norm + 0.01,
            "{}: DP {dp_norm:.3} should not lose to RP {rp_norm:.3}",
            app.name
        );
    }
}
