//! Aggregate-level regression tests: the headline orderings of Table 2
//! and Table 3 must hold when the whole suite is rerun.

use tlb_distance::experiments::{table2, table3};
use tlb_distance::workloads::Scale;

#[test]
fn table2_orderings_hold() {
    let t = table2::run(Scale::SMALL).expect("valid configurations");
    let dp = t.row("DP").expect("DP row");
    let rp = t.row("RP").expect("RP row");
    let asp = t.row("ASP").expect("ASP row");
    let mp = t.row("MP").expect("MP row");

    // Unweighted: DP leads by a wide margin, MP is far last.
    assert!(
        dp.average > rp.average + 0.15,
        "DP {:.3} should lead RP {:.3} decisively",
        dp.average,
        rp.average
    );
    assert!(dp.average > asp.average + 0.15);
    assert!(mp.average < rp.average && mp.average < asp.average);

    // Weighted: RP closes most of the gap to DP — the paper's reversal
    // — and MP stays far last. (At SMALL scale RP still pays visible
    // cold-start misses on the high-weight loop apps; at STANDARD the
    // two are within 0.01, see EXPERIMENTS.md.)
    assert!(
        rp.weighted > dp.weighted - 0.09,
        "weighted RP {:.3} should be within 0.09 of DP {:.3}",
        rp.weighted,
        dp.weighted
    );
    assert!(
        rp.weighted - rp.average > 0.25,
        "weighting should strongly favour RP: {:.3} vs {:.3}",
        rp.weighted,
        rp.average
    );
    assert!(mp.weighted < 0.2);
    // ASP sits clearly below RP and DP under weighting.
    assert!(asp.weighted < rp.weighted && asp.weighted < dp.weighted);
}

#[test]
fn table3_shape_holds() {
    let t = table3::run(Scale::SMALL).expect("valid configurations");
    assert_eq!(t.rows.len(), 5);
    for row in &t.rows {
        // The headline: DP never loses to RP on cycles.
        assert!(
            row.dp <= row.rp + 0.01,
            "{}: DP {:.3} vs RP {:.3}",
            row.app,
            row.dp,
            row.rp
        );
        // Prefetching with DP never slows execution down.
        assert!(row.dp < 1.01, "{}: DP {:.3}", row.app, row.dp);
    }
    // RP's worst case is mcf, at or above parity with no prefetching.
    let mcf = t.row("mcf").expect("mcf row");
    assert!(
        mcf.rp > 1.0,
        "mcf RP {:.3} should cross into slowdown",
        mcf.rp
    );
    let worst = t
        .rows
        .iter()
        .max_by(|a, b| a.rp.total_cmp(&b.rp))
        .expect("non-empty");
    assert_eq!(worst.app, "mcf");
}
