//! The differential trace-replay harness.
//!
//! The central claim of trace-driven execution is that a recorded trace
//! is a *perfect* substitute for the generator that produced it: not
//! approximately, but bit-for-bit, through every execution mode. This
//! harness records one representative application per suite (family) to
//! a `TLBT` file, replays it through [`TraceWorkload`], and asserts the
//! replayed [`SimStats`] equal the generator run exactly — for all five
//! prefetching mechanisms, sequentially and sharded at 1 and 4 shards.
//! Sharded equality is the strong form: boundary cold-start effects are
//! present in both runs and must line up shard by shard.
//!
//! A tiny recorded trace (`tests/data/gap-tiny-2k.tlbt`) is also checked
//! in and pinned here, so format regressions fail against bytes this
//! build did not produce.

use tlb_distance::prelude::*;
use tlb_distance::trace::{BinaryTraceReader, BinaryTraceWriter, MmapTrace, V2TraceWriter};

/// One representative per application family (suite), chosen for
/// distinct stream shapes: mcf (SPEC, pointer-heavy), adpcm-enc
/// (MediaBench, high-miss strided), perl4 (Etch desktop mix), ft
/// (Pointer-Intensive chase).
const FAMILY_REPS: [&str; 4] = ["mcf", "adpcm-enc", "perl4", "ft"];

/// The five prefetching mechanisms under test.
fn mechanisms() -> [PrefetcherConfig; 5] {
    [
        PrefetcherConfig::sequential(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ]
}

fn record_to_temp(app: &AppSpec, tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tlbsim-differential-{}-{}-{tag}.tlbt",
        std::process::id(),
        app.name
    ));
    let mut writer = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
    for access in app.workload(Scale::TINY) {
        writer.write(&access).unwrap();
    }
    writer.finish().unwrap();
    path
}

#[test]
fn replayed_stats_are_bit_identical_for_every_family_and_mechanism() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let path = record_to_temp(app, "seq");
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), app.stream_len(Scale::TINY));

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            let from_generator = run_app(app, Scale::TINY, &config).unwrap();
            let from_trace = run_app(&trace, Scale::TINY, &config).unwrap();
            assert_eq!(
                from_generator, from_trace,
                "{name}/{label}: sequential replay diverged from the generator"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn sharded_replay_matches_sharded_generator_runs_shard_by_shard() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let path = record_to_temp(app, "sharded");
        let trace = TraceWorkload::open(&path).unwrap();

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            for shards in [1usize, 4] {
                let from_generator = run_app_sharded(app, Scale::TINY, &config, shards).unwrap();
                let from_trace = run_app_sharded(&trace, Scale::TINY, &config, shards).unwrap();
                assert_eq!(
                    from_generator.merged, from_trace.merged,
                    "{name}/{label}@{shards}: merged sharded stats diverged"
                );
                assert_eq!(
                    from_generator.boundary_resident_prefetches,
                    from_trace.boundary_resident_prefetches,
                    "{name}/{label}@{shards}: boundary reconciliation diverged"
                );
                for (g, t) in from_generator.shards.iter().zip(&from_trace.shards) {
                    assert_eq!(g.range, t.range, "{name}/{label}@{shards}: plan diverged");
                    assert_eq!(
                        g.stats, t.stats,
                        "{name}/{label}@{shards}: a shard's stats diverged"
                    );
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn one_shard_trace_replay_equals_the_sequential_replay() {
    let app = find_app("mcf").unwrap();
    let path = record_to_temp(app, "one-shard");
    let trace = TraceWorkload::open(&path).unwrap();
    let config = SimConfig::paper_default();
    let sequential = run_app(&trace, Scale::TINY, &config).unwrap();
    let sharded = run_app_sharded(&trace, Scale::TINY, &config, 1).unwrap();
    assert_eq!(sharded.merged, sequential);
    assert_eq!(sharded.boundary_resident_prefetches, 0);
    std::fs::remove_file(&path).unwrap();
}

/// Converts a flat v1 trace into a block-compressed v2 trace (the `xp
/// convert --format v2` path, inlined so the differential pins the
/// library, not the CLI).
fn convert_to_v2(v1_path: &std::path::Path, block_len: u32, tag: &str) -> std::path::PathBuf {
    let out = std::env::temp_dir().join(format!(
        "tlbsim-differential-v2-{}-{tag}-{}.tlbt",
        std::process::id(),
        v1_path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("trace")
    ));
    let reader = BinaryTraceReader::open(std::fs::File::open(v1_path).unwrap()).unwrap();
    let mut writer =
        V2TraceWriter::create_with_block_len(std::fs::File::create(&out).unwrap(), block_len)
            .unwrap();
    for record in reader {
        writer.write(&record.unwrap()).unwrap();
    }
    writer.finish().unwrap();
    out
}

/// The largest block length that lands every interior cut of the
/// even-split plan on a block boundary, so
/// `ShardPlan::split_aligned(total, shards, b)` equals
/// `ShardPlan::split(total, shards)` exactly and v1/v2 sharded runs see
/// identical partitions. Falls back to 1 (a restart per record) when
/// the cuts share no larger divisor.
fn aligned_block_len(total: u64, shards: u64) -> u32 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let q = total / shards;
    let r = total % shards;
    let mut g = 0u64;
    let mut pos = 0u64;
    for i in 0..shards.saturating_sub(1) {
        pos += q + u64::from(i < r);
        g = gcd(g, pos);
    }
    u32::try_from(g.max(1)).unwrap_or(u32::MAX)
}

#[test]
fn v2_conversion_replays_bit_identically_for_every_family_and_mechanism() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let v1_path = record_to_temp(app, "v2-seq");
        let v2_path = convert_to_v2(&v1_path, 64, "seq");
        let v1 = TraceWorkload::open(&v1_path).unwrap();
        let v2 = TraceWorkload::open(&v2_path).unwrap();
        assert_eq!(v1.format_version(), 1);
        assert_eq!(v2.format_version(), 2, "{name}: v2 header sniffed");
        assert_eq!(v2.stream_len(), v1.stream_len(), "{name}: lengths agree");
        // Streaming (windowed-mmap) replay of the same v2 bytes.
        let v2s = TraceWorkload::open_streaming(&v2_path, DecodePolicy::Strict, 2).unwrap();
        assert_eq!(v2s.stream_len(), v1.stream_len());

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            let from_v1 = run_app(&v1, Scale::TINY, &config).unwrap();
            let from_v2 = run_app(&v2, Scale::TINY, &config).unwrap();
            let from_v2s = run_app(&v2s, Scale::TINY, &config).unwrap();
            assert_eq!(
                from_v1, from_v2,
                "{name}/{label}: v2 replay diverged from v1 replay"
            );
            assert_eq!(
                from_v2, from_v2s,
                "{name}/{label}: streaming v2 replay diverged from whole-map v2 replay"
            );
        }
        std::fs::remove_file(&v1_path).unwrap();
        std::fs::remove_file(&v2_path).unwrap();
    }
}

#[test]
fn v2_sharded_replay_is_bit_identical_when_blocks_align_with_the_cuts() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let v1_path = record_to_temp(app, "v2-sharded");
        let total = app.stream_len(Scale::TINY);
        // Block boundaries coincide with the 4-shard even-split cuts,
        // so the alignment-aware plan is exactly the plain plan and
        // shard-by-shard stats must match bit for bit.
        let block_len = aligned_block_len(total, 4);
        let v2_path = convert_to_v2(&v1_path, block_len, "sharded");
        let v1 = TraceWorkload::open(&v1_path).unwrap();
        let v2 = TraceWorkload::open(&v2_path).unwrap();

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            for shards in [1usize, 4] {
                let from_v1 = run_app_sharded(&v1, Scale::TINY, &config, shards).unwrap();
                let from_v2 = run_app_sharded(&v2, Scale::TINY, &config, shards).unwrap();
                assert_eq!(
                    from_v1.merged, from_v2.merged,
                    "{name}/{label}@{shards}: merged sharded stats diverged across formats"
                );
                for (a, b) in from_v1.shards.iter().zip(&from_v2.shards) {
                    assert_eq!(
                        a.range, b.range,
                        "{name}/{label}@{shards}: aligned plan diverged from the even split"
                    );
                    assert_eq!(
                        a.stats, b.stats,
                        "{name}/{label}@{shards}: a shard's stats diverged across formats"
                    );
                }
            }
        }
        std::fs::remove_file(&v1_path).unwrap();
        std::fs::remove_file(&v2_path).unwrap();
    }
}

/// The checked-in regression trace: 2000 records of gap at `Scale::TINY`
/// recorded by `xp record --app gap --scale tiny --limit 2000`. These
/// bytes were written by a past build, so any encoding or decoding
/// drift in the current build fails against them.
const REGRESSION_TRACE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/gap-tiny-2k.tlbt");

#[test]
fn checked_in_regression_trace_replays_identically_on_both_decoders() {
    let trace = MmapTrace::open(REGRESSION_TRACE).unwrap();
    assert_eq!(trace.record_count(), 2000);
    assert_eq!(trace.byte_len(), 8 + 2000 * 17);

    let via_mmap: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
    let via_reader: Vec<MemoryAccess> =
        BinaryTraceReader::open(std::fs::File::open(REGRESSION_TRACE).unwrap())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
    assert_eq!(via_mmap, via_reader);

    // The recorded prefix equals what today's generator emits: the
    // record pipeline (fill_batch -> writer) has not drifted.
    let generated: Vec<MemoryAccess> = find_app("gap")
        .unwrap()
        .workload(Scale::TINY)
        .take(2000)
        .collect();
    assert_eq!(via_mmap, generated);
}

#[test]
fn checked_in_regression_trace_drives_the_full_stack() {
    let trace = TraceWorkload::open(REGRESSION_TRACE).unwrap();
    assert_eq!(trace.name(), "gap-tiny-2k");
    assert_eq!(trace.stream_len(), 2000);

    // Replay through the functional engine under DP: deterministic, so
    // the coarse shape is pinned (exact values live in the generator
    // differential tests above).
    let stats = run_app(&trace, Scale::TINY, &SimConfig::paper_default()).unwrap();
    assert_eq!(stats.accesses, 2000);
    assert!(stats.misses > 0);
    assert!(stats.misses <= stats.accesses);
    assert_eq!(
        stats.prefetch_buffer_hits + stats.demand_walks,
        stats.misses
    );

    // And sharded replay of the checked-in bytes still partitions
    // exactly.
    let sharded = run_app_sharded(&trace, Scale::TINY, &SimConfig::paper_default(), 4).unwrap();
    assert_eq!(sharded.merged.accesses, 2000);
    assert_eq!(sharded.shards.len(), 4);
}

#[test]
fn checked_in_trace_converted_to_v2_is_bit_identical_even_sharded() {
    // The anchor of the v1<->v2 sharded differential: 2000 records at 4
    // shards cut at 500/1000/1500, and block length 100 divides every
    // cut, so the alignment-aware v2 plan IS the v1 even split.
    let v2_path = convert_to_v2(std::path::Path::new(REGRESSION_TRACE), 100, "pinned");
    let v1 = TraceWorkload::open(REGRESSION_TRACE).unwrap();
    let v2 = TraceWorkload::open(&v2_path).unwrap();
    assert_eq!(v2.format_version(), 2);
    assert_eq!(v2.stream_len(), 2000);

    // The converted bytes decode back to the exact checked-in records.
    let want: Vec<MemoryAccess> = MmapTrace::open(REGRESSION_TRACE)
        .unwrap()
        .cursor()
        .map(|r| r.unwrap())
        .collect();
    let got: Vec<MemoryAccess> = tlb_distance::trace::V2Trace::open(&v2_path)
        .unwrap()
        .cursor()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(got, want);

    let config = SimConfig::paper_default();
    let sequential_v1 = run_app(&v1, Scale::TINY, &config).unwrap();
    let sequential_v2 = run_app(&v2, Scale::TINY, &config).unwrap();
    assert_eq!(sequential_v1, sequential_v2);

    let sharded_v1 = run_app_sharded(&v1, Scale::TINY, &config, 4).unwrap();
    let sharded_v2 = run_app_sharded(&v2, Scale::TINY, &config, 4).unwrap();
    assert_eq!(sharded_v1.merged, sharded_v2.merged);
    for (a, b) in sharded_v1.shards.iter().zip(&sharded_v2.shards) {
        assert_eq!(
            a.range, b.range,
            "block-aligned plan must equal the even split"
        );
        assert_eq!(a.stats, b.stats);
    }
    std::fs::remove_file(&v2_path).unwrap();
}
