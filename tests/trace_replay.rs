//! The differential trace-replay harness.
//!
//! The central claim of trace-driven execution is that a recorded trace
//! is a *perfect* substitute for the generator that produced it: not
//! approximately, but bit-for-bit, through every execution mode. This
//! harness records one representative application per suite (family) to
//! a `TLBT` file, replays it through [`TraceWorkload`], and asserts the
//! replayed [`SimStats`] equal the generator run exactly — for all five
//! prefetching mechanisms, sequentially and sharded at 1 and 4 shards.
//! Sharded equality is the strong form: boundary cold-start effects are
//! present in both runs and must line up shard by shard.
//!
//! A tiny recorded trace (`tests/data/gap-tiny-2k.tlbt`) is also checked
//! in and pinned here, so format regressions fail against bytes this
//! build did not produce.

use tlb_distance::prelude::*;
use tlb_distance::trace::{BinaryTraceReader, BinaryTraceWriter, MmapTrace};

/// One representative per application family (suite), chosen for
/// distinct stream shapes: mcf (SPEC, pointer-heavy), adpcm-enc
/// (MediaBench, high-miss strided), perl4 (Etch desktop mix), ft
/// (Pointer-Intensive chase).
const FAMILY_REPS: [&str; 4] = ["mcf", "adpcm-enc", "perl4", "ft"];

/// The five prefetching mechanisms under test.
fn mechanisms() -> [PrefetcherConfig; 5] {
    [
        PrefetcherConfig::sequential(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ]
}

fn record_to_temp(app: &AppSpec, tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "tlbsim-differential-{}-{}-{tag}.tlbt",
        std::process::id(),
        app.name
    ));
    let mut writer = BinaryTraceWriter::create(std::fs::File::create(&path).unwrap()).unwrap();
    for access in app.workload(Scale::TINY) {
        writer.write(&access).unwrap();
    }
    writer.finish().unwrap();
    path
}

#[test]
fn replayed_stats_are_bit_identical_for_every_family_and_mechanism() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let path = record_to_temp(app, "seq");
        let trace = TraceWorkload::open(&path).unwrap();
        assert_eq!(trace.stream_len(), app.stream_len(Scale::TINY));

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            let from_generator = run_app(app, Scale::TINY, &config).unwrap();
            let from_trace = run_app(&trace, Scale::TINY, &config).unwrap();
            assert_eq!(
                from_generator, from_trace,
                "{name}/{label}: sequential replay diverged from the generator"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn sharded_replay_matches_sharded_generator_runs_shard_by_shard() {
    for name in FAMILY_REPS {
        let app = find_app(name).expect("family representative is registered");
        let path = record_to_temp(app, "sharded");
        let trace = TraceWorkload::open(&path).unwrap();

        for prefetcher in mechanisms() {
            let label = prefetcher.label();
            let config = SimConfig::paper_default().with_prefetcher(prefetcher);
            for shards in [1usize, 4] {
                let from_generator = run_app_sharded(app, Scale::TINY, &config, shards).unwrap();
                let from_trace = run_app_sharded(&trace, Scale::TINY, &config, shards).unwrap();
                assert_eq!(
                    from_generator.merged, from_trace.merged,
                    "{name}/{label}@{shards}: merged sharded stats diverged"
                );
                assert_eq!(
                    from_generator.boundary_resident_prefetches,
                    from_trace.boundary_resident_prefetches,
                    "{name}/{label}@{shards}: boundary reconciliation diverged"
                );
                for (g, t) in from_generator.shards.iter().zip(&from_trace.shards) {
                    assert_eq!(g.range, t.range, "{name}/{label}@{shards}: plan diverged");
                    assert_eq!(
                        g.stats, t.stats,
                        "{name}/{label}@{shards}: a shard's stats diverged"
                    );
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn one_shard_trace_replay_equals_the_sequential_replay() {
    let app = find_app("mcf").unwrap();
    let path = record_to_temp(app, "one-shard");
    let trace = TraceWorkload::open(&path).unwrap();
    let config = SimConfig::paper_default();
    let sequential = run_app(&trace, Scale::TINY, &config).unwrap();
    let sharded = run_app_sharded(&trace, Scale::TINY, &config, 1).unwrap();
    assert_eq!(sharded.merged, sequential);
    assert_eq!(sharded.boundary_resident_prefetches, 0);
    std::fs::remove_file(&path).unwrap();
}

/// The checked-in regression trace: 2000 records of gap at `Scale::TINY`
/// recorded by `xp record --app gap --scale tiny --limit 2000`. These
/// bytes were written by a past build, so any encoding or decoding
/// drift in the current build fails against them.
const REGRESSION_TRACE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/gap-tiny-2k.tlbt");

#[test]
fn checked_in_regression_trace_replays_identically_on_both_decoders() {
    let trace = MmapTrace::open(REGRESSION_TRACE).unwrap();
    assert_eq!(trace.record_count(), 2000);
    assert_eq!(trace.byte_len(), 8 + 2000 * 17);

    let via_mmap: Vec<MemoryAccess> = trace.cursor().map(|r| r.unwrap()).collect();
    let via_reader: Vec<MemoryAccess> =
        BinaryTraceReader::open(std::fs::File::open(REGRESSION_TRACE).unwrap())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
    assert_eq!(via_mmap, via_reader);

    // The recorded prefix equals what today's generator emits: the
    // record pipeline (fill_batch -> writer) has not drifted.
    let generated: Vec<MemoryAccess> = find_app("gap")
        .unwrap()
        .workload(Scale::TINY)
        .take(2000)
        .collect();
    assert_eq!(via_mmap, generated);
}

#[test]
fn checked_in_regression_trace_drives_the_full_stack() {
    let trace = TraceWorkload::open(REGRESSION_TRACE).unwrap();
    assert_eq!(trace.name(), "gap-tiny-2k");
    assert_eq!(trace.stream_len(), 2000);

    // Replay through the functional engine under DP: deterministic, so
    // the coarse shape is pinned (exact values live in the generator
    // differential tests above).
    let stats = run_app(&trace, Scale::TINY, &SimConfig::paper_default()).unwrap();
    assert_eq!(stats.accesses, 2000);
    assert!(stats.misses > 0);
    assert!(stats.misses <= stats.accesses);
    assert_eq!(
        stats.prefetch_buffer_hits + stats.demand_walks,
        stats.misses
    );

    // And sharded replay of the checked-in bytes still partitions
    // exactly.
    let sharded = run_app_sharded(&trace, Scale::TINY, &SimConfig::paper_default(), 4).unwrap();
    assert_eq!(sharded.merged.accesses, 2000);
    assert_eq!(sharded.shards.len(), 4);
}
