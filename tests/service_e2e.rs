//! End-to-end differential harness for the online simulation service.
//!
//! The central claim of the serving layer is that putting a daemon, a
//! socket, and a wire protocol between the caller and the engines
//! changes *nothing* about the results: a job replayed through the
//! daemon yields [`SimStats`] **bit-identical** to the equivalent batch
//! `run_app` call — per client, even with concurrent clients sharing
//! one daemon — and intermediate snapshots are cumulative prefixes of
//! the final result, with the last snapshot equal to it exactly.
//!
//! The harness also pins the operational envelope: bounded-queue
//! backpressure (`queue-full` is a typed per-job error, not a hang),
//! cancellation at checkpoint boundaries, quarantine decode policies
//! travelling through the protocol, chaos jobs (injected worker
//! panics) being retried or reported without taking the daemon down,
//! raw-garbage clients being dropped while the daemon keeps serving,
//! and both shutdown modes (drain and stop) releasing the daemon
//! thread cleanly.
//!
//! Everything runs against the checked-in `tests/data/gap-tiny-2k.tlbt`
//! trace or TINY-scale application models, in-process, on temp sockets.

use std::path::PathBuf;
use std::thread::JoinHandle;

use tlb_distance::prelude::*;
use tlbsim_service::{Client, ErrorCode, Frame, JobSpec, Server, ServerConfig, ServiceError};

const TRACE: &str = "tests/data/gap-tiny-2k.tlbt";

fn start_daemon(tag: &str, config: ServerConfig) -> (PathBuf, JoinHandle<std::io::Result<()>>) {
    let path = std::env::temp_dir().join(format!("tlbsim-e2e-{tag}-{}.sock", std::process::id()));
    let server = Server::bind(&path, config).expect("daemon binds its socket");
    let handle = std::thread::spawn(move || server.run());
    (path, handle)
}

fn batch_stats(prefetcher: PrefetcherConfig) -> SimStats {
    let trace = TraceWorkload::open(TRACE).expect("checked-in trace opens");
    let config = SimConfig::paper_default().with_prefetcher(prefetcher);
    run_app(&trace, Scale::TINY, &config).expect("batch replay runs")
}

#[test]
fn served_trace_job_is_bit_identical_to_batch_replay() {
    let (path, daemon) = start_daemon("differential", ServerConfig::default());
    let mut client = Client::connect(&path).expect("client connects");

    let mut job = JobSpec::trace(TRACE);
    job.snapshot_every = 256;
    let outcome = client.run_job(1, &job).expect("job completes");

    // Bit-identical to the batch run of the same trace + scheme.
    assert_eq!(outcome.stats, batch_stats(PrefetcherConfig::distance()));
    assert_eq!(outcome.health.retries, 0);
    assert_eq!(outcome.health.quarantined_records, 0);
    assert_eq!(outcome.shards, 1, "snapshot cadence pins one shard");
    assert_eq!(outcome.stream_len, 2000);

    // Snapshot stream: one per cadence chunk, cumulative and monotone,
    // terminating exactly at the final result.
    assert_eq!(outcome.snapshots.len() as u64, 2000u64.div_ceil(256));
    let mut prev_done = 0;
    let mut prev_accesses = 0;
    for (i, snap) in outcome.snapshots.iter().enumerate() {
        assert_eq!(snap.seq, i as u64 + 1);
        assert!(snap.accesses_done > prev_done, "progress is monotone");
        assert!(
            snap.stats.accesses >= prev_accesses,
            "statistics are cumulative"
        );
        assert_eq!(
            snap.stats.accesses, snap.accesses_done,
            "reported progress equals simulated accesses"
        );
        prev_done = snap.accesses_done;
        prev_accesses = snap.stats.accesses;
    }
    let last = outcome.snapshots.last().expect("at least one snapshot");
    assert_eq!(
        last.stats, outcome.stats,
        "the final snapshot equals the final result bit for bit"
    );

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn concurrent_clients_are_each_individually_bit_identical() {
    let (path, daemon) = start_daemon("concurrent", ServerConfig::default());
    let schemes = [
        PrefetcherConfig::distance(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
    ];

    let results: Vec<(PrefetcherConfig, SimStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = schemes
            .iter()
            .enumerate()
            .map(|(i, scheme)| {
                let path = path.clone();
                let scheme = scheme.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&path).expect("client connects");
                    let mut job = JobSpec::trace(TRACE);
                    job.scheme = scheme.clone();
                    job.snapshot_every = 512;
                    let outcome = client.run_job(i as u64 + 1, &job).expect("job completes");
                    (scheme, outcome.stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (scheme, stats) in results {
        assert_eq!(
            stats,
            batch_stats(scheme.clone()),
            "{}: concurrent serving changed the result",
            scheme.label()
        );
    }

    let mut closer = Client::connect(&path).expect("closer connects");
    closer.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn bounded_queue_rejects_with_queue_full_not_a_hang() {
    let (path, daemon) = start_daemon(
        "backpressure",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
        },
    );
    // Job 1 (separate connection) occupies the single worker — its
    // first snapshot frame proves the worker has picked it up, which
    // makes the backpressure sequence deterministic even on one CPU.
    let mut holder = Client::connect(&path).expect("holder connects");
    let mut slow = JobSpec::app("gap");
    slow.scale = Scale::STANDARD;
    slow.snapshot_every = 100;
    holder.submit(1, &slow).expect("job 1 admitted");
    match holder.next_frame().expect("job 1 progress") {
        Frame::Snapshot { job_id: 1, .. } => {}
        other => panic!("expected job 1's first snapshot, got {other:?}"),
    }

    // With the worker busy, job 2 fills the depth-1 queue and job 3
    // must bounce with a typed queue-full error — not a hang.
    let mut client = Client::connect(&path).expect("client connects");
    let mut quick = JobSpec::app("gap");
    quick.scale = Scale::TINY;
    quick.shards = 1;
    client.submit(2, &quick).expect("job 2 queued");
    match client.submit(3, &quick) {
        Err(ServiceError::Job { code, message }) => {
            assert_eq!(code, ErrorCode::QueueFull);
            assert!(message.contains("depth 1"), "diagnosis names the depth");
        }
        other => panic!("expected queue-full, got {other:?}"),
    }

    // Release the worker; the queued job still completes.
    holder.cancel(1).expect("cancel sends");
    loop {
        match holder.next_frame().expect("job 1 terminal frame") {
            Frame::Snapshot { job_id: 1, .. } => continue,
            Frame::JobError {
                job_id: 1, code, ..
            } => {
                assert_eq!(code, ErrorCode::Cancelled);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    match client.next_frame().expect("job 2 completes") {
        Frame::Done { job_id: 2, .. } => {}
        other => panic!("expected Done for job 2, got {other:?}"),
    }

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn cancellation_stops_a_running_job_at_a_checkpoint() {
    let (path, daemon) = start_daemon("cancel", ServerConfig::default());
    let mut client = Client::connect(&path).expect("client connects");

    let mut job = JobSpec::app("gap");
    job.scale = Scale::SMALL;
    job.snapshot_every = 100;
    client.submit(9, &job).expect("job admitted");

    // Let it make some progress, then cancel and drain to the typed
    // terminal frame.
    let mut snapshots_seen = 0u64;
    let mut cancelled = false;
    loop {
        match client.next_frame().expect("job frames") {
            Frame::Snapshot { job_id: 9, .. } => {
                snapshots_seen += 1;
                if snapshots_seen == 3 {
                    client.cancel(9).expect("cancel sends");
                    cancelled = true;
                }
            }
            Frame::JobError {
                job_id: 9,
                code,
                message,
            } => {
                assert!(cancelled, "no error before we cancelled");
                assert_eq!(code, ErrorCode::Cancelled);
                assert!(message.contains("snapshot"), "diagnosis: {message}");
                break;
            }
            Frame::Done { job_id: 9, .. } => {
                panic!(
                    "job finished before the cancel took effect (saw {snapshots_seen} snapshots)"
                )
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn decode_policies_travel_through_the_protocol() {
    // Vandalise two kind bytes in a copy of the checked-in trace.
    let bytes = std::fs::read(TRACE).expect("checked-in trace reads");
    let mut bad = bytes.clone();
    use tlb_distance::trace::{HEADER_BYTES, RECORD_BYTES};
    for record in [5usize, 1200] {
        bad[HEADER_BYTES + record * RECORD_BYTES + 16] = 0xEE;
    }
    let bad_path =
        std::env::temp_dir().join(format!("tlbsim-e2e-quarantine-{}.tlbt", std::process::id()));
    std::fs::write(&bad_path, &bad).expect("damaged trace writes");

    let (path, daemon) = start_daemon("quarantine", ServerConfig::default());
    let mut client = Client::connect(&path).expect("client connects");

    // Strict decode: the submit itself fails typed.
    let strict = JobSpec::trace(bad_path.to_string_lossy().into_owned());
    match client.run_job(1, &strict) {
        Err(ServiceError::Job { code, .. }) => assert_eq!(code, ErrorCode::Trace),
        other => panic!("expected a trace error, got {other:?}"),
    }

    // Quarantine decode: the job runs on the surviving records and
    // reports the loss — identically to the batch quarantine run.
    let mut lenient = JobSpec::trace(bad_path.to_string_lossy().into_owned());
    lenient.policy = DecodePolicy::quarantine(16);
    let outcome = client.run_job(2, &lenient).expect("quarantined job runs");
    assert_eq!(outcome.health.quarantined_records, 2);
    assert_eq!(outcome.stream_len, 1998);
    let trace = TraceWorkload::open_with_policy(&bad_path, DecodePolicy::quarantine(16))
        .expect("quarantine open");
    let config = SimConfig::paper_default();
    let batch = run_app(&trace, Scale::TINY, &config).expect("batch quarantine replay");
    assert_eq!(outcome.stats, batch, "quarantine replay diverged");

    // The same daemon still serves clean jobs.
    let clean = client
        .run_job(3, &JobSpec::trace(TRACE))
        .expect("clean job");
    assert_eq!(clean.stats, batch_stats(PrefetcherConfig::distance()));

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
    std::fs::remove_file(&bad_path).ok();
}

#[test]
fn chaos_jobs_are_retried_then_reported_and_the_daemon_survives() {
    let (path, daemon) = start_daemon("chaos", ServerConfig::default());
    let mut client = Client::connect(&path).expect("client connects");

    // One budgeted panic: absorbed by a retry, result unchanged.
    let mut glitch = JobSpec::trace(TRACE);
    glitch.fault_panics = 1;
    glitch.shards = 1;
    let outcome = client.run_job(1, &glitch).expect("retried job completes");
    assert_eq!(outcome.health.retries, 1, "the retry is observable");
    assert_eq!(outcome.stats, batch_stats(PrefetcherConfig::distance()));

    // A persistent panic: typed per-job error, daemon unharmed.
    let mut broken = JobSpec::trace(TRACE);
    broken.fault_panics = SHARD_ATTEMPTS as u64 + 1;
    broken.shards = 1;
    match client.run_job(2, &broken) {
        Err(ServiceError::Job { code, message }) => {
            assert_eq!(code, ErrorCode::Panicked);
            assert!(message.contains("chaos"), "diagnosis: {message}");
        }
        other => panic!("expected a panicked job error, got {other:?}"),
    }

    // Proof of life: the same daemon serves a clean job afterwards.
    let clean = client
        .run_job(3, &JobSpec::trace(TRACE))
        .expect("clean job");
    assert_eq!(clean.stats, batch_stats(PrefetcherConfig::distance()));

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn garbage_clients_are_dropped_while_the_daemon_keeps_serving() {
    use std::io::{Read, Write};

    let (path, daemon) = start_daemon("garbage", ServerConfig::default());

    // A client that speaks pure noise is disconnected...
    let mut vandal = std::os::unix::net::UnixStream::connect(&path).expect("vandal connects");
    vandal
        .write_all(&[0xFF; 64])
        .expect("garbage writes before the server hangs up");
    let mut sink = Vec::new();
    let _ = vandal.read_to_end(&mut sink); // EOF once the server drops us

    // ...and a client announcing the wrong protocol version learns the
    // server's version before the connection closes.
    let mut relic = std::os::unix::net::UnixStream::connect(&path).expect("relic connects");
    let mut scratch = Vec::new();
    tlbsim_service::write_frame(&mut relic, &Frame::Hello { version: 999 }, &mut scratch)
        .expect("hello writes");
    let mut payload = Vec::new();
    match tlbsim_service::read_frame(&mut relic, &mut payload) {
        Ok(Frame::Hello { version }) => {
            assert_eq!(version, tlbsim_service::PROTOCOL_VERSION)
        }
        other => panic!("expected the server's version, got {other:?}"),
    }
    let mut rest = Vec::new();
    let _ = relic.read_to_end(&mut rest);
    assert!(rest.is_empty(), "server hangs up after the version reply");

    // Honest clients are unaffected.
    let mut client = Client::connect(&path).expect("client connects");
    let outcome = client.run_job(1, &JobSpec::trace(TRACE)).expect("job runs");
    assert_eq!(outcome.stats, batch_stats(PrefetcherConfig::distance()));

    client.shutdown(true).expect("clean shutdown");
    daemon.join().expect("daemon thread").expect("clean exit");
}

#[test]
fn non_drain_shutdown_fails_queued_jobs_and_finishes_running_ones() {
    let (path, daemon) = start_daemon(
        "stop",
        ServerConfig {
            workers: 1,
            queue_depth: 8,
        },
    );
    // Job 1 (separate connection) occupies the single worker; its
    // first snapshot proves it is in flight, not queued.
    let mut holder = Client::connect(&path).expect("holder connects");
    let mut slow = JobSpec::app("gap");
    slow.scale = Scale::STANDARD;
    slow.snapshot_every = 100;
    holder.submit(1, &slow).expect("job 1 admitted");
    match holder.next_frame().expect("job 1 progress") {
        Frame::Snapshot { job_id: 1, .. } => {}
        other => panic!("expected job 1's first snapshot, got {other:?}"),
    }

    // Job 2 sits in the queue; a non-drain shutdown must drop it typed
    // while the in-flight job 1 runs to its own terminal frame.
    let mut client = Client::connect(&path).expect("client connects");
    let mut quick = JobSpec::app("gap");
    quick.scale = Scale::TINY;
    quick.shards = 1;
    client.submit(2, &quick).expect("job 2 queued");

    client
        .send_frame(&Frame::Shutdown { drain: false })
        .expect("shutdown sends");

    // On the shutdown connection: job 2 dropped, then the ack (both
    // sent by the same handler, in order).
    match client.next_frame().expect("dropped-job frame") {
        Frame::JobError {
            job_id: 2, code, ..
        } => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected job 2 dropped, got {other:?}"),
    }
    match client.next_frame().expect("shutdown ack") {
        Frame::ShuttingDown => {}
        other => panic!("expected the shutdown ack, got {other:?}"),
    }

    // Job 1 is in flight, so it finishes on its own terms — here we
    // cancel to keep the test fast; a natural Done is equally valid.
    holder.cancel(1).expect("cancel sends");
    loop {
        match holder.next_frame().expect("job 1 terminal frame") {
            Frame::Snapshot { job_id: 1, .. } => continue,
            Frame::JobError {
                job_id: 1,
                code: ErrorCode::Cancelled,
                ..
            }
            | Frame::Done { job_id: 1, .. } => break,
            other => panic!("unexpected frame {other:?}"),
        }
    }

    daemon.join().expect("daemon thread").expect("clean exit");
    assert!(!path.exists(), "socket file is removed on exit");
}
