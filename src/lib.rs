//! # tlb-distance
//!
//! A from-scratch reproduction of **“Going the Distance for TLB
//! Prefetching: An Application-Driven Study”** (Kandiraju &
//! Sivasubramaniam, ISCA 2002): distance prefetching for TLBs, the four
//! mechanisms it is compared against, the TLB/prefetch-buffer/memory
//! substrate, 56 synthetic application models, and the full evaluation
//! harness regenerating every table and figure of the paper.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`core`] | `tlbsim-core` | the prefetching mechanisms (DP + SP/ASP/MP/RP) and prediction tables |
//! | [`mmu`] | `tlbsim-mmu` | TLB, prefetch buffer, page table |
//! | [`mem`] | `tlbsim-mem` | prefetch-traffic channel and timing parameters |
//! | [`trace`] | `tlbsim-trace` | binary/text trace formats and statistics |
//! | [`workloads`] | `tlbsim-workloads` | the 56-application synthetic suite |
//! | [`sim`] | `tlbsim-sim` | functional and timing simulation engines |
//! | [`service`] | `tlbsim-service` | simulation daemon, wire protocol and client |
//! | [`experiments`] | `tlbsim-experiments` | Table 1–3 / Figure 7–9 regeneration + throughput telemetry |
//!
//! ## The zero-allocation miss path
//!
//! The simulator's inner loop — the paper's Figure 1 evaluation loop —
//! runs billions of times across the sweeps, so its hot path is
//! allocation-free by contract:
//!
//! * mechanisms write prefetch candidates into a caller-owned, inline
//!   [`core::CandidateBuf`] sink ([`core::TlbPrefetcher::on_miss`]);
//!   the owned-`Vec` [`core::PrefetchDecision`] survives only behind the
//!   [`core::TlbPrefetcher::decide`] convenience wrapper;
//! * engines process references in batches with a TLB-hit fast path
//!   (`access_batch`), stream workloads chunk-at-a-time via
//!   [`workloads::Workload::fill_batch`], and keep one sink plus one
//!   batch buffer for their whole lifetime;
//! * the parallel [`sim::sweep`] executor recycles one engine per worker
//!   thread across jobs ([`sim::Engine::try_recycle`]);
//! * the `zero_alloc` integration test in `tlbsim-sim` pins the
//!   guarantee with a counting global allocator, and
//!   `xp bench-json` snapshots accesses/sec per scheme into
//!   `BENCH_throughput.json` for a PR-over-PR perf trajectory.
//!
//! ## Sharded execution
//!
//! Parallelism comes on two axes: [`sim::sweep`] spreads a *grid* of
//! independent jobs over the machine, and [`sim::run_app_sharded`]
//! spreads *one* large run — the access stream is time-sliced into a
//! static [`sim::ShardPlan`], each contiguous slice runs on a private
//! engine shard ([`workloads::Workload::skip_accesses`] seeks the
//! stream to the slice start without replaying the prefix), and the
//! per-shard [`sim::SimStats`] merge deterministically with a
//! footprint union plus a prefetch-buffer boundary-reconciliation
//! counter. One shard is bit-identical to the sequential path; the
//! `sharded_run` bench group gates ≥ 2× throughput at 4 shards on
//! multi-core hosts, and `xp --shards N` drives the figure-scale
//! accuracy grids through the sharded path.
//!
//! ## Trace-driven execution
//!
//! The paper's methodology is trace-driven, and recorded traces are a
//! first-class input here: [`trace::MmapTrace`] memory-maps a binary
//! `TLBT` file (via the one `unsafe`-bearing shim crate;
//! read-whole-file fallback elsewhere), validates it once, and decodes
//! record batches zero-copy into the engines' buffers;
//! [`workloads::TraceWorkload`] adapts a trace to the
//! [`workloads::StreamSpec`] surface so [`sim::run_app`],
//! [`sim::sweep`] and [`sim::run_app_sharded`] accept application
//! models and traces interchangeably — sharded replay seeks each
//! worker's cursor in O(1) because records are fixed 17-byte cells.
//! `xp record` / `xp replay` drive it from the command line, the
//! differential harness in `tests/trace_replay.rs` pins replayed
//! statistics bit-identical to generator runs, and the `trace_replay`
//! bench group gates replay at ≥ 0.8× generator throughput. The byte
//! format is specified normatively in `docs/TRACE_FORMAT.md`.
//!
//! ## Multiprogrammed execution
//!
//! [`workloads::MultiStreamSpec`] interleaves up to 8 streams — models
//! and traces alike — into one deterministic multiprogrammed stream
//! under a [`workloads::Schedule`] (round-robin, weighted, or
//! seeded-random quanta). The mix is itself a
//! [`workloads::StreamSpec`], so the plain runners take it unchanged;
//! the switch-aware [`sim::run_mix`] / [`sim::run_mix_sharded`]
//! additionally flush translation + prediction state at context
//! switches and attribute hits/misses/prefetch outcomes per stream
//! ([`sim::SimStats::per_stream`]). `xp mix` sweeps the 30-scheme grid
//! over an interleave, and the `multiprogram` bench group gates
//! interleaved execution at ≥ 0.8× single-stream throughput. The
//! architecture is documented in `docs/DESIGN.md`.
//!
//! ## Fault-tolerant execution
//!
//! Damaged inputs and crashing workers are first-class, tested
//! scenarios, not undefined behaviour. [`trace::DecodePolicy`] selects
//! between strict decode (any damage is a typed error — the default
//! everywhere) and quarantine decode (skip unparseable records up to a
//! budget, resync on the 17-byte grid, report the loss in a
//! [`trace::TraceHealth`]); [`trace::FaultPlan`] bakes deterministic
//! seeded faults — corrupt kind bytes, wild vaddrs, torn tails,
//! transient I/O errors, worker panics — into trace images, readers
//! ([`trace::FaultyRead`]) or live streams ([`workloads::ChaosSpec`])
//! for chaos testing; and the sharded executors self-heal: a panicking
//! shard worker is retried, then degraded to in-line sequential
//! execution, with recovery reported in [`sim::RunHealth`] and the
//! recovered statistics bit-identical to an undisturbed run. The fault
//! matrix in `tests/fault_matrix.rs` pins every fault kind × policy ×
//! execution mode; `xp check` / `xp chaos` drive the same machinery
//! from the command line. The failure model is documented in
//! `docs/DESIGN.md`.
//!
//! ## Serving layer
//!
//! The simulator also runs as a long-lived daemon:
//! [`service::Server`] listens on a Unix-domain socket, speaks a
//! length-prefixed versioned binary protocol (specified normatively in
//! `docs/PROTOCOL.md`), and multiplexes submitted jobs — recorded
//! traces or registered application models under any scheme — onto a
//! bounded-queue worker pool. Every fault-tolerance guarantee carries
//! over per job: [`service::JobSpec`] selects the
//! [`trace::DecodePolicy`], worker panics are retried and then surfaced
//! as typed [`service::ErrorCode`]s while the daemon keeps serving, and
//! a snapshot cadence streams incremental [`sim::SimStats`] checkpoints
//! that finish bit-identical to the equivalent batch run.
//! [`service::Client`] is the in-process client; `xp serve` /
//! `xp submit` / `xp shutdown` drive it from the command line, and
//! `xp bench-json`'s `service` section tracks served-vs-batch ingest
//! throughput.
//!
//! ## Quick start
//!
//! ```
//! use tlb_distance::prelude::*;
//!
//! // Simulate SPEC's galgel under the paper's default configuration
//! // (128-entry fully-associative TLB, 16-entry prefetch buffer,
//! // distance prefetcher with r = 256, s = 2).
//! let app = find_app("galgel").expect("registered application");
//! let stats = run_app(app, Scale::TINY, &SimConfig::paper_default())?;
//! assert!(stats.accuracy() > 0.8);
//! # Ok::<(), tlb_distance::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tlbsim_core as core;
pub use tlbsim_experiments as experiments;
pub use tlbsim_mem as mem;
pub use tlbsim_mmu as mmu;
pub use tlbsim_service as service;
pub use tlbsim_sim as sim;
pub use tlbsim_trace as trace;
pub use tlbsim_workloads as workloads;

/// The most common imports for working with the simulator.
pub mod prelude {
    pub use tlbsim_core::{
        Associativity, ConfidenceConfig, Distance, MemoryAccess, MissContext, PageSize, Pc,
        PrefetcherConfig, PrefetcherKind, TlbPrefetcher, VirtAddr, VirtPage,
    };
    pub use tlbsim_mem::TimingParams;
    pub use tlbsim_mmu::{PrefetchBuffer, Tlb, TlbConfig};
    pub use tlbsim_service::{Client, JobOutcome, JobSpec, Server, ServerConfig, ServiceError};
    pub use tlbsim_sim::{
        compare_schemes, run_app, run_app_sharded, run_app_timed, run_mix, run_mix_sharded, Engine,
        PerStreamStats, RunHealth, ShardedRun, SimConfig, SimError, SimStats, StreamStats,
        SwitchPolicy, TablePolicy, TimingEngine, SHARD_ATTEMPTS,
    };
    pub use tlbsim_trace::{DecodePolicy, FaultKind, FaultPlan, TraceHealth};
    pub use tlbsim_workloads::{
        all_apps, find_app, suite_apps, AppSpec, ChaosSpec, MultiStreamSpec, Scale, Schedule,
        StreamSpec, Suite, TraceWorkload, Workload,
    };
}
