//! Quickstart: simulate one application under the paper's default
//! configuration and print what the distance prefetcher achieved.
//!
//! ```text
//! cargo run --release --example quickstart [app-name]
//! ```

use tlb_distance::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "galgel".to_owned());
    let app = find_app(&name).ok_or_else(|| {
        format!(
            "unknown application {name:?}; try one of: {}",
            all_apps()
                .iter()
                .map(|a| a.name)
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;

    println!("application : {app}");
    println!("behaviour   : {} {}", app.class, app.description);
    println!();

    // The paper's representative setup: 128-entry fully-associative TLB,
    // 16-entry prefetch buffer, DP with r = 256 rows and s = 2 slots.
    let config = SimConfig::paper_default();
    let stats = run_app(app, Scale::SMALL, &config)?;

    println!("configuration        : {config}");
    println!("references simulated : {}", stats.accesses);
    println!("footprint            : {} pages", stats.footprint_pages);
    println!("TLB miss rate        : {:.4}", stats.miss_rate());
    println!("prediction accuracy  : {:.3}", stats.accuracy());
    println!("prefetches issued    : {}", stats.prefetches_issued);
    println!("memory ops per miss  : {:.2}", stats.memory_ops_per_miss());
    Ok(())
}
