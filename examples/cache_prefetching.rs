//! Distance prefetching beyond the TLB: drive the same mechanisms at
//! cache-line granularity (the paper's §4 direction, "can possibly be
//! used in the context of caches").
//!
//! ```text
//! cargo run --release --example cache_prefetching
//! ```

use tlb_distance::mmu::DataCacheConfig;
use tlb_distance::prelude::*;
use tlb_distance::sim::CacheEngine;

fn patterns() -> Vec<(&'static str, Vec<MemoryAccess>)> {
    let line = 64u64;
    let mut out = Vec::new();

    // Sequential streaming: everyone's favourite.
    out.push((
        "sequential lines",
        (0..60_000u64)
            .map(|i| MemoryAccess::read(0x40, i / 2 * line))
            .collect(),
    ));

    // Column-major matrix walk: constant large line stride.
    out.push((
        "stride-24 lines",
        (0..60_000u64)
            .map(|i| MemoryAccess::read(0x40, i / 2 * 24 * line))
            .collect(),
    ));

    // Alternating distances (1, 17): the class-(d) pattern at line
    // granularity — only distance prefetching tracks it.
    let mut alt = Vec::new();
    let mut l = 0u64;
    for i in 0..60_000u64 {
        alt.push(MemoryAccess::read(0x40, l * line));
        l += if i % 2 == 0 { 1 } else { 17 };
    }
    out.push(("alternating 1/17", alt));

    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = [
        ("none", PrefetcherConfig::none()),
        ("SP", PrefetcherConfig::sequential()),
        ("ASP", PrefetcherConfig::stride()),
        ("DP", PrefetcherConfig::distance()),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "pattern", "none", "SP", "ASP", "DP"
    );
    println!("{}", "-".repeat(62));
    for (name, stream) in patterns() {
        print!("{name:<18}");
        for (_, scheme) in &schemes {
            let mut engine = CacheEngine::new(DataCacheConfig::typical_l1d(), scheme)?;
            engine.run(stream.iter().copied());
            print!(" {:>9.4}", engine.stats().miss_rate());
        }
        println!();
    }
    println!("\nvalues are demand miss rates of a 32KiB/64B/4-way L1D");
    Ok(())
}
