//! Compare all five prefetching mechanisms on a set of applications —
//! a miniature Figure 7 for the terminal.
//!
//! ```text
//! cargo run --release --example compare_schemes [app ...]
//! ```
//!
//! With no arguments it runs a representative slice of the suite: one
//! application per reference-behaviour class of the paper's §1 taxonomy.

use tlb_distance::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if requested.is_empty() {
        // One app per behaviour class: (a) gzip, (b) galgel, (c) bzip,
        // (d) mpeg-dec, (e) fma3d — plus the two Table 3 protagonists.
        vec!["gzip", "galgel", "bzip", "mpeg-dec", "fma3d", "mcf", "ammp"]
    } else {
        requested.iter().map(String::as_str).collect()
    };

    let schemes = [
        PrefetcherConfig::sequential(),
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ];

    println!(
        "{:<10} {:>8}  {:>6} {:>6} {:>6} {:>6} {:>6}",
        "app", "missrate", "SP", "ASP", "MP", "RP", "DP"
    );
    println!("{}", "-".repeat(60));

    for name in names {
        let app = find_app(name).ok_or_else(|| format!("unknown application {name:?}"))?;
        let results = compare_schemes(app, Scale::SMALL, &SimConfig::paper_default(), &schemes)?;
        let miss_rate = results[0].1.miss_rate();
        print!("{:<10} {:>8.4} ", app.name, miss_rate);
        for (_, stats) in &results {
            print!(" {:>6.3}", stats.accuracy());
        }
        println!();
    }

    println!();
    println!("accuracy = fraction of TLB misses satisfied by the prefetch buffer");
    Ok(())
}
