//! Reproduce a slice of Figure 9: sweep the distance prefetcher's table
//! size and associativity on one application and watch how little it
//! matters (the paper's point: a small direct-mapped 32-256 entry table
//! suffices).
//!
//! ```text
//! cargo run --release --example sensitivity_sweep [app-name]
//! ```

use tlb_distance::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "adpcm-enc".to_owned());
    let app = find_app(&name).ok_or_else(|| format!("unknown application {name:?}"))?;
    println!("DP sensitivity on {app}\n");

    println!("{:<8} {:>8} {:>8} {:>8}", "rows", "direct", "4-way", "full");
    println!("{}", "-".repeat(36));
    for rows in [32usize, 64, 128, 256, 512, 1024] {
        print!("{rows:<8}");
        for assoc in [
            Associativity::Direct,
            Associativity::ways_of(4),
            Associativity::Full,
        ] {
            let mut dp = PrefetcherConfig::distance();
            dp.rows(rows).assoc(assoc);
            let config = SimConfig::paper_default().with_prefetcher(dp);
            let stats = run_app(app, Scale::SMALL, &config)?;
            print!(" {:>8.3}", stats.accuracy());
        }
        println!();
    }

    println!("\nslots (r = 256, direct):");
    for slots in [1usize, 2, 4, 6, 8] {
        let mut dp = PrefetcherConfig::distance();
        dp.slots(slots);
        let config = SimConfig::paper_default().with_prefetcher(dp);
        let stats = run_app(app, Scale::SMALL, &config)?;
        println!("  s = {slots}: accuracy {:.3}", stats.accuracy());
    }
    Ok(())
}
