//! The external-trace pipeline: generate a workload, persist it in the
//! binary trace format, analyse the file, and simulate from the trace —
//! exactly how a trace captured by an external tool (Pin, DynamoRIO,
//! QEMU) would be consumed.
//!
//! ```text
//! cargo run --release --example trace_pipeline [app-name]
//! ```

use tlb_distance::prelude::*;
use tlb_distance::trace::{BinaryTraceReader, BinaryTraceWriter, TraceStats, TraceStreamExt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "swim".to_owned());
    let app = find_app(&name).ok_or_else(|| format!("unknown application {name:?}"))?;

    // 1. Capture the workload into a binary trace file.
    let path = std::env::temp_dir().join(format!("tlb-distance-{name}.trace"));
    let file = std::fs::File::create(&path)?;
    let mut writer = BinaryTraceWriter::create(file)?;
    for access in app.workload(Scale::TINY) {
        writer.write(&access)?;
    }
    let written = writer.records_written();
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {written} records ({bytes} bytes) to {}",
        path.display()
    );

    // 2. Analyse the trace: footprint, stride mix, reuse.
    let reader = BinaryTraceReader::open(std::fs::File::open(&path)?)?;
    let stats =
        TraceStats::from_stream(reader.map(|r| r.expect("valid record")), PageSize::DEFAULT);
    println!("\ntrace statistics:");
    println!("  accesses            : {}", stats.accesses);
    println!("  footprint           : {} pages", stats.footprint_pages);
    println!("  distinct PCs        : {}", stats.distinct_pcs);
    println!("  write fraction      : {:.2}", stats.write_fraction);
    println!("  distinct distances  : {}", stats.distinct_distances());
    if let Some(d) = stats.dominant_distance() {
        println!(
            "  dominant distance   : {d} ({:.1}% of transitions)",
            100.0 * stats.distance_share(d)
        );
    }

    // 3. Simulate straight from the file, skipping a warm-up window.
    let reader = BinaryTraceReader::open(std::fs::File::open(&path)?)?;
    let stream = reader
        .map(|r| r.expect("valid record"))
        .window(1_000, u64::MAX);
    let mut engine = Engine::new(&SimConfig::paper_default())?;
    engine.run(stream);
    println!("\nsimulation from trace (after 1k-record fast-forward):");
    println!("  {}", engine.stats());

    std::fs::remove_file(&path)?;
    Ok(())
}
