//! Build custom reference patterns from the workload primitives and
//! watch which mechanism wins on each of the paper's §1 behaviour
//! classes (a)–(e).
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use tlb_distance::prelude::*;
use tlb_distance::workloads::{
    DistanceCycle, LoopedScan, PointerChase, StridedScan, VisitStream, Workload,
};

type ClassBuilder = Box<dyn Fn() -> VisitStream>;

fn classes() -> Vec<(&'static str, ClassBuilder)> {
    vec![
        (
            "(a) strided, touched once",
            Box::new(|| Box::new(StridedScan::new(0x10000, 2, 20_000, 6, 0x40))),
        ),
        (
            // Footprint below the 256-row tables so per-address history
            // (MP) can participate, per the paper's class (b).
            "(b) strided, revisited",
            Box::new(|| Box::new(LoopedScan::new(0x10000, 1, 150, 120, 6, 0x40))),
        ),
        (
            "(c) stride changes over time",
            Box::new(|| {
                let phase1 = StridedScan::new(0x10000, 1, 8_000, 6, 0x40);
                let phase2 = StridedScan::new(0x40000, 5, 8_000, 6, 0x40);
                Box::new(phase1.chain(phase2))
            }),
        ),
        (
            "(d) irregular but repeating",
            Box::new(|| Box::new(DistanceCycle::new(0x10000, vec![1, 31], 20_000, 6, 0x40))),
        ),
        (
            "(e) no regularity at all",
            Box::new(|| {
                Box::new(PointerChase::new(0x10000, 4_000, 5, 6, 0x40, 7).reshuffled_each_lap(9))
            }),
        ),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = [
        PrefetcherConfig::stride(),
        PrefetcherConfig::markov(),
        PrefetcherConfig::recency(),
        PrefetcherConfig::distance(),
    ];

    println!(
        "{:<30} {:>6} {:>6} {:>6} {:>6}",
        "behaviour class", "ASP", "MP", "RP", "DP"
    );
    println!("{}", "-".repeat(60));

    for (label, build) in classes() {
        print!("{label:<30}");
        for scheme in &schemes {
            let config = SimConfig::paper_default().with_prefetcher(scheme.clone());
            let mut engine = Engine::new(&config)?;
            engine.run(Workload::from_visits(label, build()));
            print!(" {:>6.3}", engine.stats().accuracy());
        }
        println!();
    }

    println!();
    println!("The paper's §1 prediction: stride schemes win (a)-(c); history");
    println!("schemes win (d) only with per-address tables; DP tracks (a)-(d);");
    println!("nothing wins (e).");
    Ok(())
}
